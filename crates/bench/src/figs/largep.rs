//! Large-p sweep: the paper's headline regime and beyond — p = 2^10 ..
//! 2^15 on the cooperative fiber backend, and up to **p = 2^20** under
//! `MPISIM_BACKEND=poll`, where every rank is a stackless poll-mode body
//! (a few hundred bytes of future state instead of a 128 KiB fiber stack
//! plus guard-page VMAs). Rows at shared p are **byte-identical** across
//! the two backends — CI diffs the CSVs — so the tail of the sweep is a
//! genuine extension of the same experiment, not a different one.
//!
//! Two tables:
//!
//! 1. **Communicator creation at scale** — RBC `split` (O(1), local) vs
//!    native `MPI_Comm_create_group` (mask agreement over the new group)
//!    vs native `MPI_Comm_split`. The split column runs the **full range**:
//!    `Comm::split` is the distributed sample sort of
//!    `mpisim::splitdist` (O(√p) simulator memory per rank, plus a
//!    transient O(segment) member list on each segment-gathering leader —
//!    linear aggregate memory), not the textbook all-gather whose Θ(p²)
//!    aggregate memory used to cap this column at 2^12. The paper's point about heavyweight construction
//!    survives in the *costs*: split still pays sorting, routing, and a
//!    context agreement over the whole parent, so it stays orders of
//!    magnitude above RBC's local O(1) split at every p.
//! 2. **JQuick at scale** — RBC split + barrier + a small Janus Quicksort
//!    (n/p = 8) end to end, the acceptance scenario of the scheduler.
//!
//! Expected shape (EXPERIMENTS.md): RBC flat in p; `create_group` growing
//! with log p (agreement tree depth) plus the linear group build; native
//! split growing with log p (a constant number of parent-wide collectives
//! dominated by α·log p, plus the √p-element leader sorts); JQuick's
//! makespan polylogarithmic in p at fixed n/p.
//!
//! Sweep control: `BENCH_QUICK=1` caps the sweep at 2^12 (both backends —
//! the quick poll and fiber sweeps cover the same p, which is what the CI
//! byte-diff compares); the poll backend otherwise extends the fiber range
//! with the sparse tail {2^16, 2^18, 2^20}. `LARGEP_MAX_EXP=<e>` caps the
//! sweep at 2^e (lenient: unparsable values are ignored), and under the
//! poll backend an explicit cap opts the tail in even in quick mode, so
//! CI can run `BENCH_QUICK=1 LARGEP_MAX_EXP=18` as a bounded
//! past-the-ceiling smoke.

use jquick::{jquick_sort_async, JQuickConfig, Layout, RbcBackend};
use mpisim::{coll, Backend, SimConfig, Time, Transport, Universe};
use rbc::RbcComm;

use crate::{measure_async, ms, quick_mode, reps, write_artifact, write_bench_json, Table};

/// Largest process exponent of the fiber-backed part of the sweep
/// (paper: 2^15).
fn max_exp() -> u32 {
    if quick_mode() {
        12
    } else {
        15
    }
}

/// The swept process exponents for the configured backend: the shared
/// fiber range, plus the sparse poll-only tail {2^16, 2^18, 2^20} past
/// the fiber ceiling. `LARGEP_MAX_EXP` caps both parts — and, under the
/// poll backend, an explicit cap opts the tail in even in quick mode, so
/// CI can run e.g. `BENCH_QUICK=1 LARGEP_MAX_EXP=18` as a bounded
/// past-the-ceiling smoke without paying for the full fiber range.
fn exps(backend: Backend) -> Vec<u32> {
    let cap = std::env::var("LARGEP_MAX_EXP")
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok());
    let mut v: Vec<u32> = (10..=max_exp().min(cap.unwrap_or(u32::MAX))).collect();
    if backend == Backend::Poll {
        let tail_cap = match cap {
            Some(c) => c,
            None if quick_mode() => 0,
            None => 20,
        };
        v.extend([16u32, 18, 20].into_iter().filter(|&e| e <= tail_cap));
    }
    v
}

fn coop() -> SimConfig {
    SimConfig::cooperative()
}

fn rbc_split_time(p: usize) -> Time {
    measure_async(p, coop(), reps(3), move |env, _| async move {
        let world = RbcComm::create(&env.world);
        let r = world.rank();
        let (f, l) = if r < p / 2 {
            (0, p / 2 - 1)
        } else {
            (p / 2, p - 1)
        };
        world.barrier_async().await.unwrap();
        let t0 = env.now();
        let _c = world.split(f, l).unwrap();
        env.now() - t0
    })
}

fn create_group_time(p: usize) -> Time {
    measure_async(p, coop(), reps(3), move |env, rep| async move {
        let w = &env.world;
        let g = if w.rank() < p / 2 {
            mpisim::Group::range(0, 1, p / 2)
        } else {
            mpisim::Group::range(p / 2, 1, p - p / 2)
        };
        w.barrier_async().await.unwrap();
        let t0 = env.now();
        let _c = w.create_group_async(&g, 100 + rep as u64).await.unwrap();
        env.now() - t0
    })
}

fn native_split_time(p: usize) -> Time {
    measure_async(p, coop(), reps(3), move |env, _| async move {
        let w = &env.world;
        let color = u64::from(w.rank() >= p / 2);
        w.barrier_async().await.unwrap();
        let t0 = env.now();
        let _c = w.split_async(color, w.rank() as u64).await.unwrap();
        env.now() - t0
    })
}

fn jquick_time(p: usize, n_per: u64) -> Time {
    let n = n_per * p as u64;
    measure_async(p, coop(), reps(2), move |env, rep| async move {
        let w = &env.world;
        let layout = Layout::new(n, p as u64);
        let m = layout.cap(w.rank() as u64);
        let data: Vec<u64> = (0..m)
            .map(|i| (i * p as u64 + (p as u64 - 1 - w.rank() as u64) + rep as u64) % n.max(1))
            .collect();
        coll::barrier_async(w, 3).await.unwrap();
        let t0 = env.now();
        let out = jquick_sort_async(&RbcBackend, w, data, n, &JQuickConfig::default())
            .await
            .unwrap()
            .0;
        let dt = env.now() - t0;
        assert_eq!(out.len() as u64, m, "JQuick must stay perfectly balanced");
        dt
    })
}

/// Run one traced JQuick slice at the foot of the sweep (p = 2^10,
/// n/p = 8) and export every observability artefact:
///
/// * `results/largep_trace.txt` — the canonical text rendering of the
///   deterministic trace. CI byte-diffs this file across
///   `MPISIM_COOP_WORKERS`, `MPISIM_COOP_COMMIT`, and `MPISIM_BACKEND`
///   settings; any difference means scheduling leaked into the model.
/// * Chrome `trace_event` JSON (default `results/largep_trace.json`,
///   overridable via `MPISIM_TRACE_OUT`) — drop into Perfetto /
///   `chrome://tracing`, one track per rank in virtual microseconds.
/// * `results/BENCH_sched_profile.json` — the host wall-clock scheduler
///   profile (per-worker run/commit/idle split, shard claims, stack-pool
///   hits). Deliberately *not* a gated artefact: it measures this
///   machine, not the model.
pub fn traced_slice() {
    let p = 1usize << 10;
    let n = 8 * p as u64;
    let cfg = coop().with_trace(true).with_sched_profile(true);
    let res = Universe::run_poll(p, cfg, move |env| async move {
        let w = &env.world;
        let layout = Layout::new(n, p as u64);
        let m = layout.cap(w.rank() as u64);
        let data: Vec<u64> = (0..m)
            .map(|i| (i * p as u64 + (p as u64 - 1 - w.rank() as u64)) % n.max(1))
            .collect();
        let out = jquick_sort_async(&RbcBackend, w, data, n, &JQuickConfig::default())
            .await
            .unwrap()
            .0;
        assert_eq!(out.len() as u64, m, "JQuick must stay perfectly balanced");
    });
    let trace = res.trace.expect("tracing was requested");
    let chrome_path = mpisim::env::trace_out_from(mpisim::env::var("MPISIM_TRACE_OUT").as_deref())
        .unwrap_or_else(|| "results/largep_trace.json".to_string());
    write_artifact(&chrome_path, trace.to_chrome_json());
    write_artifact("results/largep_trace.txt", trace.to_text());
    eprintln!(
        "largep: traced slice at p = {p}: {} events -> {chrome_path} + results/largep_trace.txt",
        trace.events.len()
    );
    let profile = res.sched_profile.expect("profiling was requested");
    write_artifact("results/BENCH_sched_profile.json", profile.to_json());
    eprintln!("largep: wrote results/BENCH_sched_profile.json");
}

/// Regenerate the large-p tables and write their CSVs plus a
/// machine-readable `results/BENCH_largep.json` (virtual times, per-point
/// host wall-clock, and the cooperative worker count — the artefact CI
/// diffs byte-wise across worker counts **and backends**: the
/// virtual-time columns must be identical for any `MPISIM_COOP_WORKERS`
/// and, at shared p, for `MPISIM_BACKEND=poll` vs fiber; only wall-clock
/// may differ, which is why wall-clock lives in the JSON and not the
/// CSVs).
pub fn run() -> Vec<Table> {
    let cfg = SimConfig::cooperative();
    let (workers, backend) = (cfg.coop_workers, cfg.backend);
    let t_start = std::time::Instant::now();
    let mut comms = Table::new(
        "Large p — splitting a communicator of p processes into halves (cooperative backend)",
        "p",
        &["RBC split", "MPI_Comm_create_group", "MPI_Comm_split"],
    );
    let mut sort = Table::new(
        "Large p — RBC split + barrier + JQuick sort, n/p = 8 (cooperative backend)",
        "p",
        &["JQuick (RBC)"],
    );
    let mut wall = Table::with_unit(
        &format!("Large p — host wall-clock of the JQuick sweep ({workers} worker(s))"),
        "p",
        &["JQuick sweep wall-clock"],
        "s",
    );
    for e in exps(backend) {
        let p = 1usize << e;
        comms.push(
            p as u64,
            vec![
                ms(rbc_split_time(p)),
                ms(create_group_time(p)),
                ms(native_split_time(p)),
            ],
        );
        let t0 = std::time::Instant::now();
        sort.push(p as u64, vec![ms(jquick_time(p, 8))]);
        wall.push(p as u64, vec![t0.elapsed().as_secs_f64()]);
        eprintln!("largep: finished p = 2^{e}");
    }
    comms.print();
    comms.write_csv("largep_comms");
    sort.print();
    sort.write_csv("largep_jquick");
    wall.print();
    let tables = vec![comms, sort, wall];
    write_bench_json("largep", &tables, t_start.elapsed().as_secs_f64(), workers);
    traced_slice();
    tables
}
