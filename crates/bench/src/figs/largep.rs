//! Large-p sweep: the paper's headline regime, p = 2^10 .. 2^15 simulated
//! processes, runnable only on the cooperative scheduler backend (the
//! thread backend tops out around 2^9 OS threads).
//!
//! Two tables:
//!
//! 1. **Communicator creation at scale** — RBC `split` (O(1), local) vs
//!    native `MPI_Comm_create_group` (mask agreement over the new group)
//!    vs native `MPI_Comm_split`. The split column runs the **full range
//!    to 2^15**: `Comm::split` is the distributed sample sort of
//!    `mpisim::splitdist` (O(√p) simulator memory per rank, plus a
//!    transient O(segment) member list on each segment-gathering leader —
//!    linear aggregate memory), not the textbook all-gather whose Θ(p²)
//!    aggregate memory used to cap this column at 2^12. The paper's point about heavyweight construction
//!    survives in the *costs*: split still pays sorting, routing, and a
//!    context agreement over the whole parent, so it stays orders of
//!    magnitude above RBC's local O(1) split at every p.
//! 2. **JQuick at scale** — RBC split + barrier + a small Janus Quicksort
//!    (n/p = 8) end to end, the acceptance scenario of the scheduler.
//!
//! Expected shape (EXPERIMENTS.md): RBC flat in p; `create_group` growing
//! with log p (agreement tree depth) plus the linear group build; native
//! split growing with log p (a constant number of parent-wide collectives
//! dominated by α·log p, plus the √p-element leader sorts); JQuick's
//! makespan polylogarithmic in p at fixed n/p.

use jquick::{jquick_sort, JQuickConfig, Layout, RbcBackend};
use mpisim::{coll, SimConfig, Time, Transport, Universe};
use rbc::RbcComm;

use crate::{measure, ms, quick_mode, reps, write_bench_json, Table};

/// Largest process exponent of this sweep (paper: 2^15).
fn max_exp() -> u32 {
    if quick_mode() {
        12
    } else {
        15
    }
}

fn coop() -> SimConfig {
    SimConfig::cooperative()
}

fn rbc_split_time(p: usize) -> Time {
    measure(p, coop(), reps(3), move |env, _| {
        let world = RbcComm::create(&env.world);
        let r = world.rank();
        let (f, l) = if r < p / 2 {
            (0, p / 2 - 1)
        } else {
            (p / 2, p - 1)
        };
        world.barrier().unwrap();
        let t0 = env.now();
        let _c = world.split(f, l).unwrap();
        env.now() - t0
    })
}

fn create_group_time(p: usize) -> Time {
    measure(p, coop(), reps(3), move |env, rep| {
        let w = &env.world;
        let g = if w.rank() < p / 2 {
            mpisim::Group::range(0, 1, p / 2)
        } else {
            mpisim::Group::range(p / 2, 1, p - p / 2)
        };
        w.barrier().unwrap();
        let t0 = env.now();
        let _c = w.create_group(&g, 100 + rep as u64).unwrap();
        env.now() - t0
    })
}

fn native_split_time(p: usize) -> Time {
    measure(p, coop(), reps(3), move |env, _| {
        let w = &env.world;
        let color = u64::from(w.rank() >= p / 2);
        w.barrier().unwrap();
        let t0 = env.now();
        let _c = w.split(color, w.rank() as u64).unwrap();
        env.now() - t0
    })
}

fn jquick_time(p: usize, n_per: u64) -> Time {
    let n = n_per * p as u64;
    measure(p, coop(), reps(2), move |env, rep| {
        let w = &env.world;
        let layout = Layout::new(n, p as u64);
        let m = layout.cap(w.rank() as u64);
        let data: Vec<u64> = (0..m)
            .map(|i| (i * p as u64 + (p as u64 - 1 - w.rank() as u64) + rep as u64) % n.max(1))
            .collect();
        coll::barrier(w, 3).unwrap();
        let t0 = env.now();
        let out = jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default())
            .unwrap()
            .0;
        let dt = env.now() - t0;
        assert_eq!(out.len() as u64, m, "JQuick must stay perfectly balanced");
        dt
    })
}

/// Run one traced JQuick slice at the foot of the sweep (p = 2^10,
/// n/p = 8) and export every observability artefact:
///
/// * `results/largep_trace.txt` — the canonical text rendering of the
///   deterministic trace. CI byte-diffs this file across
///   `MPISIM_COOP_WORKERS` and `MPISIM_COOP_COMMIT` settings; any
///   difference means scheduling leaked into the model.
/// * Chrome `trace_event` JSON (default `results/largep_trace.json`,
///   overridable via `MPISIM_TRACE_OUT`) — drop into Perfetto /
///   `chrome://tracing`, one track per rank in virtual microseconds.
/// * `results/BENCH_sched_profile.json` — the host wall-clock scheduler
///   profile (per-worker run/commit/idle split, shard claims, stack-pool
///   hits). Deliberately *not* a gated artefact: it measures this
///   machine, not the model.
pub fn traced_slice() {
    let p = 1usize << 10;
    let n = 8 * p as u64;
    let cfg = coop().with_trace(true).with_sched_profile(true);
    let res = Universe::run(p, cfg, move |env| {
        let w = &env.world;
        let layout = Layout::new(n, p as u64);
        let m = layout.cap(w.rank() as u64);
        let data: Vec<u64> = (0..m)
            .map(|i| (i * p as u64 + (p as u64 - 1 - w.rank() as u64)) % n.max(1))
            .collect();
        let out = jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default())
            .unwrap()
            .0;
        assert_eq!(out.len() as u64, m, "JQuick must stay perfectly balanced");
    });
    std::fs::create_dir_all("results").unwrap();
    let trace = res.trace.expect("tracing was requested");
    let chrome_path = mpisim::env::trace_out_from(mpisim::env::var("MPISIM_TRACE_OUT").as_deref())
        .unwrap_or_else(|| "results/largep_trace.json".to_string());
    std::fs::write(&chrome_path, trace.to_chrome_json()).unwrap();
    std::fs::write("results/largep_trace.txt", trace.to_text()).unwrap();
    eprintln!(
        "largep: traced slice at p = {p}: {} events -> {chrome_path} + results/largep_trace.txt",
        trace.events.len()
    );
    let profile = res.sched_profile.expect("profiling was requested");
    std::fs::write("results/BENCH_sched_profile.json", profile.to_json()).unwrap();
    eprintln!("largep: wrote results/BENCH_sched_profile.json");
}

/// Regenerate the large-p tables and write their CSVs plus a
/// machine-readable `results/BENCH_largep.json` (virtual times, per-point
/// host wall-clock, and the cooperative worker count — the artefact CI
/// diffs byte-wise across worker counts: the virtual-time columns must be
/// identical for any `MPISIM_COOP_WORKERS`, only wall-clock may differ,
/// which is why wall-clock lives in the JSON and not the CSVs).
pub fn run() -> Vec<Table> {
    let workers = SimConfig::cooperative().coop_workers;
    let t_start = std::time::Instant::now();
    let mut comms = Table::new(
        "Large p — splitting a communicator of p processes into halves (cooperative backend)",
        "p",
        &["RBC split", "MPI_Comm_create_group", "MPI_Comm_split"],
    );
    let mut sort = Table::new(
        "Large p — RBC split + barrier + JQuick sort, n/p = 8 (cooperative backend)",
        "p",
        &["JQuick (RBC)"],
    );
    let mut wall = Table::with_unit(
        &format!("Large p — host wall-clock of the JQuick sweep ({workers} worker(s))"),
        "p",
        &["JQuick sweep wall-clock"],
        "s",
    );
    for e in 10..=max_exp() {
        let p = 1usize << e;
        comms.push(
            p as u64,
            vec![
                ms(rbc_split_time(p)),
                ms(create_group_time(p)),
                ms(native_split_time(p)),
            ],
        );
        let t0 = std::time::Instant::now();
        sort.push(p as u64, vec![ms(jquick_time(p, 8))]);
        wall.push(p as u64, vec![t0.elapsed().as_secs_f64()]);
        eprintln!("largep: finished p = 2^{e}");
    }
    comms.print();
    comms.write_csv("largep_comms");
    sort.print();
    sort.write_csv("largep_jquick");
    wall.print();
    let tables = vec![comms, sort, wall];
    write_bench_json("largep", &tables, t_start.elapsed().as_secs_f64(), workers);
    traced_slice();
    tables
}
