//! Fig. 6: splitting a communicator into *overlapping* communicators of
//! size 4 ({0..3}, {3..6}, {6..9}, ...) with a cascaded vs an alternating
//! schedule (paper: p = 2^9..2^13, Intel MPI vs RBC).
//!
//! Processes at ranks 3, 6, 9, ... belong to two communicators. Cascaded:
//! every such process creates its left communicator first — native blocking
//! creation then chains across the whole machine and the time grows
//! linearly with p. Alternating: every other overlap process creates the
//! right one first, which bounds the chains. RBC: both schedules are local
//! and free.

use mpisim::{Group, SimConfig, Time, Transport, VendorProfile};
use rbc::RbcComm;

use crate::figs::scale;
use crate::{measure, ms, pow2_sweep, reps, Table};

/// Group k covers ranks 3k..=3k+3; usable p is 3m+1.
fn usable_p(p: usize) -> usize {
    if p < 4 {
        4
    } else {
        ((p - 1) / 3) * 3 + 1
    }
}

/// The group indices rank `r` belongs to, in (left, right) order.
fn my_groups(p: usize, r: usize) -> Vec<usize> {
    let n_groups = (p - 1) / 3;
    let mut gs = Vec::new();
    if r.is_multiple_of(3) {
        if r > 0 {
            gs.push(r / 3 - 1); // left group
        }
        if r / 3 < n_groups {
            gs.push(r / 3); // right group
        }
    } else {
        gs.push(r / 3);
    }
    gs
}

#[derive(Clone, Copy, PartialEq)]
enum Sched {
    Cascaded,
    Alternating,
}

fn native_overlap(p: usize, sched: Sched) -> Time {
    let p = usable_p(p);
    measure(
        p,
        SimConfig::default().with_vendor(VendorProfile::intel_like()),
        reps(3),
        move |env, _| {
            let w = &env.world;
            let mut gs = my_groups(p, w.rank());
            // gs is in (left, right) order; flip for alternating on odd
            // overlap processes.
            if sched == Sched::Alternating && gs.len() == 2 && (w.rank() / 3) % 2 == 1 {
                gs.reverse();
            }
            w.barrier().unwrap();
            let t0 = env.now();
            for k in gs {
                let group = Group::range(3 * k, 1, 4);
                let _c = w.create_group(&group, 200 + k as u64).unwrap();
            }
            env.now() - t0
        },
    )
}

fn rbc_overlap(p: usize, sched: Sched) -> Time {
    let p = usable_p(p);
    measure(p, SimConfig::default(), reps(3), move |env, _| {
        let world = RbcComm::create(&env.world);
        let mut gs = my_groups(p, world.rank());
        if sched == Sched::Alternating && gs.len() == 2 && (world.rank() / 3) % 2 == 1 {
            gs.reverse();
        }
        world.barrier().unwrap();
        let t0 = env.now();
        for k in gs {
            let _c = world.split(3 * k, 3 * k + 3).unwrap();
        }
        env.now() - t0
    })
}

/// Regenerate this figure's tables and write their CSVs.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "Fig 6 — overlapping communicators of size 4, cascaded vs alternating",
        "p",
        &[
            "RBC Cascade",
            "RBC Alternating",
            "Intel Alternating create_group",
            "Intel Cascade create_group",
        ],
    );
    for p in pow2_sweep(4, scale::max_proc_exp()) {
        let p = p as usize;
        t.push(
            usable_p(p) as u64,
            vec![
                ms(rbc_overlap(p, Sched::Cascaded)),
                ms(rbc_overlap(p, Sched::Alternating)),
                ms(native_overlap(p, Sched::Alternating)),
                ms(native_overlap(p, Sched::Cascaded)),
            ],
        );
    }
    t.print();
    t.write_csv("fig6_overlap");
    vec![t]
}
