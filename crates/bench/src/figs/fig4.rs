//! Fig. 4: running times of `MPI_Iscan` vs `rbc::Iscan`, doubles, per-rank
//! element counts swept (paper: 2^15 cores, n/p = 2^0..2^18).
//!
//! Expected shape: all implementations coincide for small n/p (startup
//! dominated); for large n/p RBC outperforms the vendor scans by up to an
//! order of magnitude (paper: factor up to 16).

use mpisim::nbcoll::Progress;
use mpisim::{ops, SimConfig, Time, VendorProfile};
use rbc::RbcComm;

use crate::figs::scale;
use crate::{measure, ms, pow2_sweep, reps, Table};

fn vendor_iscan(p: usize, n_per: usize, vendor: VendorProfile) -> Time {
    let cfg = SimConfig::default().with_vendor(vendor);
    measure(p, cfg, reps(5), move |env, rep| {
        let w = &env.world;
        let data: Vec<f64> = (0..n_per).map(|i| (i + rep) as f64).collect();
        w.barrier().unwrap();
        let t0 = env.now();
        let mut sm = w.iscan(&data, ops::sum::<f64>()).unwrap();
        while !sm.poll().unwrap() {
            mpisim::yield_now();
        }
        env.now() - t0
    })
}

fn rbc_iscan(p: usize, n_per: usize, vendor: VendorProfile) -> Time {
    let cfg = SimConfig::default().with_vendor(vendor);
    measure(p, cfg, reps(5), move |env, rep| {
        let w = RbcComm::create(&env.world);
        let data: Vec<f64> = (0..n_per).map(|i| (i + rep) as f64).collect();
        w.barrier().unwrap();
        let t0 = env.now();
        let mut sm = w.iscan(&data, ops::sum::<f64>(), None).unwrap();
        while !sm.poll().unwrap() {
            mpisim::yield_now();
        }
        env.now() - t0
    })
}

/// Regenerate this figure's tables and write their CSVs.
pub fn run() -> Vec<Table> {
    let p = scale::p_elems();
    let mut t = Table::new(
        &format!("Fig 4 — nonblocking scan on {p} cores (doubles)"),
        "n/p",
        &["IBM MPI Iscan", "Intel MPI Iscan", "RBC Iscan (IBM p2p)"],
    );
    for n_per in pow2_sweep(0, scale::max_elem_exp()) {
        let n_per = n_per as usize;
        let ibm = vendor_iscan(p, n_per, VendorProfile::ibm_like());
        let intel = vendor_iscan(p, n_per, VendorProfile::intel_like());
        let rbc = rbc_iscan(p, n_per, VendorProfile::ibm_like());
        t.push(n_per as u64, vec![ms(ibm), ms(intel), ms(rbc)]);
    }
    t.print();
    t.write_csv("fig4_iscan");
    vec![t]
}
