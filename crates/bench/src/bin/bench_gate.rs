//! The CI bench-regression gate.
//!
//! Compares the current quick-mode bench artefacts
//! (`results/BENCH_micro.json`, `results/BENCH_largep.json`) against the
//! committed `results/BENCH_baseline.json` and exits non-zero on any
//! metric more than 30 % slower than its baseline, printing a per-bench
//! delta table. Virtual-time metrics are deterministic, so any delta there
//! is a real model change; host-measured ns/iter metrics get the same
//! tolerance, which absorbs normal machine jitter. Metrics from `count`
//! tables (the `tracevol` model counters) are **exact**: any drift in
//! either direction fails the gate regardless of `BENCH_GATE_TOLERANCE`.
//!
//! Usage:
//!
//! * `bench_gate` — gate the current `results/` against the baseline.
//!   `BENCH_GATE_TOLERANCE` (fractional, default `0.30`) widens the gate;
//!   `BENCH_BASELINE` overrides the baseline path.
//! * `bench_gate --write-baseline` — regenerate
//!   `results/BENCH_baseline.json` from the current artefacts (run the
//!   quick-mode micro + largep benches first).

use std::process::ExitCode;

use rbc_bench::gate::{self, Metric, Verdict};

/// The artefacts the gate inspects, in report order. Each entry lists the
/// candidate paths for one artefact: `cargo bench` binaries run with the
/// package directory as cwd (so the criterion shim writes under
/// `crates/bench/results/`), while the figure bins run from the workspace
/// root (`results/`).
const CURRENT: &[&[&str]] = &[
    &[
        "results/BENCH_micro.json",
        "crates/bench/results/BENCH_micro.json",
    ],
    &["results/BENCH_largep.json"],
    &["results/BENCH_faults.json"],
    &["results/BENCH_tracevol.json"],
    &["results/BENCH_fleet.json"],
];

fn load_metrics(candidates: &[&str]) -> Vec<Metric> {
    // When several candidates exist (e.g. a stale CI artifact in
    // `results/` next to a freshly written `crates/bench/results/` file),
    // take the most recently modified one and say so.
    let mut existing: Vec<(&str, std::time::SystemTime)> = candidates
        .iter()
        .filter_map(|p| {
            let mtime = std::fs::metadata(p).and_then(|m| m.modified()).ok()?;
            Some((*p, mtime))
        })
        .collect();
    existing.sort_by_key(|&(_, mtime)| std::cmp::Reverse(mtime));
    if existing.len() > 1 {
        eprintln!(
            "bench_gate: {} copies of this artefact exist; using the newest, {}",
            existing.len(),
            existing[0].0
        );
    }
    let Some(&(path, _)) = existing.first() else {
        eprintln!("bench_gate: none of {candidates:?} found");
        return Vec::new();
    };
    match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
        Ok(s) => match gate::parse(&s) {
            Ok(doc) => gate::metrics_of(&doc),
            Err(e) => {
                eprintln!("bench_gate: {path}: malformed JSON ({e})");
                Vec::new()
            }
        },
        Err(e) => {
            eprintln!("bench_gate: {path}: {e}");
            Vec::new()
        }
    }
}

fn main() -> ExitCode {
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");
    let baseline_path = gate::baseline_path_from(std::env::var("BENCH_BASELINE").ok().as_deref());

    let current: Vec<Metric> = CURRENT.iter().flat_map(|p| load_metrics(p)).collect();
    if write_baseline {
        if current.is_empty() {
            eprintln!("bench_gate: no metrics found — run the quick-mode benches first");
            return ExitCode::FAILURE;
        }
        let json = gate::baseline_json(&current);
        // Create the parent directory first: a bare write would die with an
        // anonymous NotFound when run outside the crate root.
        if let Some(dir) = std::path::Path::new(&baseline_path)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
        {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!(
                    "bench_gate: cannot create directory {} for {baseline_path}: {e}",
                    dir.display()
                );
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(&baseline_path, json) {
            eprintln!("bench_gate: cannot write {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "bench_gate: wrote {baseline_path} ({} metrics)",
            current.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => match gate::parse(&s) {
            Ok(doc) => gate::baseline_metrics(&doc),
            Err(e) => {
                eprintln!("bench_gate: {baseline_path}: malformed baseline ({e})");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("bench_gate: {baseline_path}: {e} (commit one with --write-baseline)");
            return ExitCode::FAILURE;
        }
    };
    let tolerance = gate::tolerance_from(std::env::var("BENCH_GATE_TOLERANCE").ok().as_deref());

    let rows = gate::compare(&baseline, &current, tolerance);
    println!("\n| metric | baseline ns | current ns | delta | status |\n|---|---|---|---|---|");
    let lookup = |set: &[Metric], id: &str| {
        set.iter()
            .find(|m| m.id == id)
            .map_or("-".to_string(), |m| format!("{:.1}", m.ns))
    };
    let mut regressions = 0usize;
    let mut missing = 0usize;
    for (id, verdict) in &rows {
        let (delta, status) = match verdict {
            Verdict::Ok(d) => (format!("{:+.1}%", d * 100.0), "ok"),
            Verdict::Regressed(d) => {
                regressions += 1;
                (format!("{:+.1}%", d * 100.0), "REGRESSED")
            }
            Verdict::Missing => {
                missing += 1;
                ("-".to_string(), "MISSING")
            }
            Verdict::New => ("-".to_string(), "new"),
        };
        println!(
            "| {id} | {} | {} | {delta} | {status} |",
            lookup(&baseline, id),
            lookup(&current, id)
        );
    }
    println!(
        "\nbench_gate: {} metrics, {regressions} regression(s) beyond {:.0}%, {missing} missing",
        rows.len(),
        tolerance * 100.0
    );
    if regressions > 0 || missing > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
