//! Runs the extension/ablation experiments (assignment, schedule, §VI).
fn main() {
    rbc_bench::figs::ablations::run();
}
