//! Standalone runner for the per-collective communication-volume figure.
//!
//! Usage: `cargo run --release --bin tracevol` (set `BENCH_QUICK=1` for the
//! CI-sized sweep). Writes `results/tracevol_*.csv` and
//! `results/BENCH_tracevol.json`, and panics if any collective's measured
//! message count deviates from the model or breaks its O(log p) per-rank
//! bound.

fn main() {
    rbc_bench::figs::tracevol::run();
}
