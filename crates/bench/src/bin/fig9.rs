//! Regenerates Fig. 9 of the paper. `BENCH_QUICK=1` for a fast sweep.
fn main() {
    rbc_bench::figs::fig9::run();
}
