//! Regenerates every table and figure of the paper's evaluation, plus the
//! ablations. `BENCH_QUICK=1` shrinks the sweeps.
fn main() {
    rbc_bench::figs::fig4::run();
    rbc_bench::figs::fig5::run();
    rbc_bench::figs::fig6::run();
    rbc_bench::figs::fig7::run();
    rbc_bench::figs::fig8::run();
    rbc_bench::figs::fig9::run();
    rbc_bench::figs::ablations::run();
    rbc_bench::figs::largep::run();
    rbc_bench::figs::faults::run();
    rbc_bench::figs::tracevol::run();
}
