//! Regenerates Fig. 5 of the paper. `BENCH_QUICK=1` for a fast sweep.
fn main() {
    rbc_bench::figs::fig5::run();
}
