//! Extension: the §IV sorting-algorithm families side by side.
fn main() {
    rbc_bench::figs::sorters::run();
}
