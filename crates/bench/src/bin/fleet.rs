//! Fleet-mode throughput + oracle artefacts (`results/BENCH_fleet.json`).

fn main() {
    #[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
    rbc_bench::figs::fleet::run();
    #[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
    eprintln!("fleet bench needs the fiber scheduler (unix x86_64/aarch64); skipping");
}
