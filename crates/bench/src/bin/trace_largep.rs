//! Export the traced JQuick slice on its own (without the full large-p
//! timing sweep): canonical trace text, Chrome `trace_event` JSON, and the
//! wall-clock scheduler profile.
//!
//! CI runs this binary several times — varying `MPISIM_COOP_WORKERS` and
//! `MPISIM_COOP_COMMIT`, redirecting the Chrome export with
//! `MPISIM_TRACE_OUT` — and byte-diffs `results/largep_trace.txt` between
//! runs: the deterministic trace must not depend on how the simulation was
//! scheduled.

fn main() {
    rbc_bench::figs::largep::traced_slice();
}
