//! Regenerates the fault-injection sweep: straggler degradation of
//! JQuick vs multi-level vs single-level sample sort (makespan and output
//! imbalance), seeded and fully deterministic. `BENCH_QUICK=1` shrinks
//! the sweep.
fn main() {
    rbc_bench::figs::faults::run();
}
