//! Regenerates the large-p sweep: communicator creation at scale and
//! JQuick end to end. p = 2^10..2^15 on the cooperative fiber backend;
//! `MPISIM_BACKEND=poll` extends the sweep with the stackless poll-mode
//! tail {2^16, 2^18, 2^20}. `BENCH_QUICK=1` caps the sweep at 2^12;
//! `LARGEP_MAX_EXP=<e>` caps it at 2^e.
fn main() {
    rbc_bench::figs::largep::run();
}
