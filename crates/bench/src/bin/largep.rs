//! Regenerates the large-p sweep (p = 2^10..2^15, cooperative scheduler
//! backend): communicator creation at scale and JQuick end to end.
//! `BENCH_QUICK=1` caps the sweep at 2^12.
fn main() {
    rbc_bench::figs::largep::run();
}
