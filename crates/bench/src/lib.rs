//! Shared benchmark harness utilities.
//!
//! Every figure binary builds a [`Table`] (one row per x value, one column
//! per series), prints it as markdown, and writes a CSV under `results/`.
//! Timing follows the paper's protocol: an operation's running time is the
//! **maximum over ranks** of per-rank virtual elapsed time, **averaged over
//! repetitions** (the paper uses 5 reps for microbenchmarks, 7/3 for
//! sorting).

#![warn(missing_docs)]

use std::fs;

pub mod figs;
pub mod gate;
use std::path::Path;

use mpisim::{SimConfig, Time};

/// Number of repetitions, scaled down in quick mode.
pub fn reps(full: usize) -> usize {
    if quick_mode() {
        2
    } else {
        full
    }
}

/// `BENCH_QUICK=1` shrinks sweeps so `cargo bench` stays fast; the figure
/// binaries run full sweeps by default.
pub fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Powers of two in `[2^lo, 2^hi]`, truncated in quick mode.
pub fn pow2_sweep(lo: u32, hi: u32) -> Vec<u64> {
    let hi = if quick_mode() { hi.min(lo + 4) } else { hi };
    (lo..=hi).map(|e| 1u64 << e).collect()
}

/// A result table: one named series per column.
pub struct Table {
    /// Table heading, printed above the markdown rendering.
    pub title: String,
    /// Name of the x column (e.g. `n/p` or `p`).
    pub xlabel: String,
    /// Column (series) names.
    pub series: Vec<String>,
    /// Unit appended to series headers (usually `ms`).
    pub unit: String,
    /// One `(x, series values)` row per swept point.
    pub rows: Vec<(u64, Vec<f64>)>,
}

impl Table {
    /// A table reporting milliseconds.
    pub fn new(title: &str, xlabel: &str, series: &[&str]) -> Table {
        Table::with_unit(title, xlabel, series, "ms")
    }

    /// A table reporting values in `unit`.
    pub fn with_unit(title: &str, xlabel: &str, series: &[&str], unit: &str) -> Table {
        Table {
            title: title.to_string(),
            xlabel: xlabel.to_string(),
            series: series.iter().map(|s| s.to_string()).collect(),
            unit: unit.to_string(),
            rows: Vec::new(),
        }
    }

    /// Append a row; `values` must match the series count.
    pub fn push(&mut self, x: u64, values: Vec<f64>) {
        assert_eq!(values.len(), self.series.len());
        self.rows.push((x, values));
    }

    /// Render as a markdown table of milliseconds.
    pub fn print(&self) {
        println!("\n## {}\n", self.title);
        print!("| {} |", self.xlabel);
        for s in &self.series {
            if self.unit.is_empty() {
                print!(" {s} |");
            } else {
                print!(" {s} [{}] |", self.unit);
            }
        }
        println!();
        print!("|---|");
        for _ in &self.series {
            print!("---|");
        }
        println!();
        for (x, vals) in &self.rows {
            print!("| {x} |");
            for v in vals {
                print!(" {v:.4} |");
            }
            println!();
        }
    }

    /// Render the table as CSV. Non-finite cells render empty —
    /// downstream plotting must never have to parse a literal `NaN`.
    pub fn to_csv(&self) -> String {
        let mut out = self.xlabel.clone();
        for s in &self.series {
            out.push_str(&format!(",{s}"));
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            out.push_str(&x.to_string());
            for v in vals {
                if v.is_finite() {
                    out.push_str(&format!(",{v:.6}"));
                } else {
                    out.push(',');
                }
            }
            out.push('\n');
        }
        out
    }

    /// Write `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) {
        let dir = Path::new("results");
        let _ = fs::create_dir_all(dir);
        let path = dir.join(format!("{name}.csv"));
        if fs::write(&path, self.to_csv()).is_ok() {
            eprintln!("wrote {}", path.display());
        }
    }

    /// Serialise the table as a JSON object (title, unit, series, rows).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"title\":{:?},\"xlabel\":{:?},\"unit\":{:?},\"series\":[",
            self.title, self.xlabel, self.unit
        );
        for (i, name) in self.series.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{name:?}"));
        }
        s.push_str("],\"rows\":[");
        for (i, (x, vals)) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"x\":{x},\"values\":["));
            for (j, v) in vals.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                // NaN is not JSON; emit null for skipped cells.
                if v.is_finite() {
                    s.push_str(&format!("{v:.6}"));
                } else {
                    s.push_str("null");
                }
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

/// Write `results/BENCH_<name>.json`: the machine-readable counterpart of a
/// figure run — every table plus the run's wall-clock seconds and relevant
/// environment (worker count), so CI can archive and diff bench results
/// without scraping stdout.
pub fn write_bench_json(name: &str, tables: &[Table], wall_clock_s: f64, workers: usize) {
    let dir = Path::new("results");
    let _ = fs::create_dir_all(dir);
    let mut out = format!(
        "{{\"bench\":{name:?},\"workers\":{workers},\"wall_clock_s\":{wall_clock_s:.3},\"tables\":["
    );
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_json());
    }
    out.push_str("]}\n");
    let path = dir.join(format!("BENCH_{name}.json"));
    if fs::write(&path, out).is_ok() {
        eprintln!("wrote {}", path.display());
    }
}

/// Run `op` on `p` ranks `reps` times and report the mean over reps of the
/// per-rep makespan (max over ranks of virtual elapsed time). The closure
/// receives `(env, rep_index)` and must return its elapsed virtual time.
pub fn measure<F>(p: usize, cfg: SimConfig, reps: usize, op: F) -> Time
where
    F: Fn(&mpisim::ProcEnv, usize) -> Time + Send + Sync,
{
    let res = mpisim::Universe::run(p, cfg, |env| {
        let mut times = Vec::with_capacity(reps);
        for rep in 0..reps {
            times.push(op(&env, rep));
        }
        times
    });
    makespan_mean(&res.per_rank, reps)
}

/// Maybe-async twin of [`measure`]: the per-rep operation is an `async fn`,
/// so one kernel serves every backend — under the fiber or thread backend
/// it completes inside `block_inline`, and under `Backend::Poll` it
/// suspends at blocking calls and runs as a stackless poll-mode rank body,
/// which is what lets sweeps continue past the fiber ceiling (p > 2^15).
pub fn measure_async<F, Fut>(p: usize, cfg: SimConfig, reps: usize, op: F) -> Time
where
    F: Fn(mpisim::ProcEnv, usize) -> Fut + Send + Sync,
    Fut: std::future::Future<Output = Time> + Send,
{
    let res = mpisim::Universe::run_poll(p, cfg, |env| {
        let op = &op;
        async move {
            let mut times = Vec::with_capacity(reps);
            for rep in 0..reps {
                times.push(op(env.clone(), rep).await);
            }
            times
        }
    });
    makespan_mean(&res.per_rank, reps)
}

/// Per rep: max over ranks; then mean over reps.
fn makespan_mean(per_rank: &[Vec<Time>], reps: usize) -> Time {
    let mut total = 0u64;
    for rep in 0..reps {
        let max = per_rank
            .iter()
            .map(|ts| ts[rep].as_nanos())
            .max()
            .unwrap_or(0);
        total += max;
    }
    Time(total / reps as u64)
}

/// Write a results artefact: create the parent directory first, then panic
/// with the offending *path* on failure. A bare `fs::write(...).unwrap()`
/// dies with an anonymous `NotFound` that names neither the file nor the
/// missing directory — useless when a figure binary runs from an
/// unexpected working directory.
pub fn write_artifact(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) {
    let path = path.as_ref();
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = fs::create_dir_all(dir) {
            panic!(
                "cannot create directory {} for artifact {}: {e}",
                dir.display(),
                path.display()
            );
        }
    }
    if let Err(e) = fs::write(path, contents) {
        panic!("cannot write artifact {}: {e}", path.display());
    }
}

/// Convert to the milliseconds the tables report.
pub fn ms(t: Time) -> f64 {
    t.as_millis_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes() {
        std::env::remove_var("BENCH_QUICK");
        assert_eq!(pow2_sweep(0, 3), vec![1, 2, 4, 8]);
    }

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("t", "x", &["a", "b"]);
        t.push(1, vec![0.5, 1.5]);
        t.push(2, vec![0.25, 2.5]);
        assert_eq!(t.rows.len(), 2);
        t.print(); // smoke
    }

    #[test]
    fn non_finite_cells_serialise_as_empty_and_null() {
        let mut t = Table::new("t", "x", &["a", "b"]);
        t.push(1, vec![0.5, f64::NAN]);
        let json = t.to_json();
        assert!(json.contains("null"), "{json}");
        assert!(!json.contains("NaN"), "{json}");
        // CSV rendering of a non-finite cell is an empty field.
        let csv = t.to_csv();
        assert!(csv.lines().any(|l| l == "1,0.500000,"), "{csv}");
        assert!(!csv.contains("NaN"), "{csv}");
    }

    #[test]
    fn write_artifact_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("rbc_bench_artifact_test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested/deep/file.csv");
        write_artifact(&path, "x,y\n");
        assert_eq!(fs::read_to_string(&path).unwrap(), "x,y\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn measure_async_matches_measure() {
        let cfg = || SimConfig::cooperative().with_seed(9);
        let sync = measure(4, cfg(), 2, |env, _| {
            env.world.barrier().unwrap();
            env.now()
        });
        let fut = measure_async(4, cfg(), 2, |env, _| async move {
            env.world.barrier_async().await.unwrap();
            env.now()
        });
        assert_eq!(sync, fut);
    }

    #[test]
    fn measure_reports_makespan_mean() {
        let t = measure(3, SimConfig::default(), 2, |env, rep| {
            let dt = Time::from_millis((env.rank() as u64 + 1) * (rep as u64 + 1));
            env.state().charge(dt);
            dt
        });
        // Rep 0 makespan 3ms, rep 1 makespan 6ms -> mean 4.5ms.
        assert_eq!(t, Time::from_micros(4500));
    }
}
