//! The bench-regression gate.
//!
//! CI archives machine-readable `results/BENCH_<name>.json` files — the
//! criterion shim's per-benchmark ns/iter and the figure harness's virtual
//! time tables. This module turns those files into a flat
//! `metric id → ns` map, diffs a run against the committed
//! `results/BENCH_baseline.json`, and reports regressions; the `bench_gate`
//! binary drives it and fails the `large-universe` CI job on any
//! regression beyond the tolerance (default +30 %).
//!
//! Virtual-time metrics (the figure tables, reported in ms and normalised
//! to ns here) are **deterministic**: any delta at all is a real model or
//! algorithm change, so the gate is noise-free for them. Host-measured
//! metrics (criterion ns/iter) wobble with the machine; the 30 % default
//! tolerance absorbs normal jitter, and `BENCH_GATE_TOLERANCE` can widen
//! it for unusually noisy environments. Wall-clock tables (unit `s`) are
//! environment, not model, and are excluded.
//!
//! The vendored offline shims have no serde, so this module carries a
//! minimal JSON reader sufficient for the files the harness itself writes
//! (objects, arrays, ASCII strings with standard escapes, numbers, `null`,
//! booleans).

use std::fmt::Write as _;

/// A parsed JSON value (just enough for the bench artefacts).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (skipped benchmark cells).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as f64.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, or empty.
    pub fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    /// The string value, or empty.
    pub fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            _ => "",
        }
    }

    /// The numeric value, if a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a JSON document. Returns `Err` with a byte offset on malformed
/// input.
pub fn parse(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    let v = parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, i);
    if *i < b.len() && b[*i] == c {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, i))
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            let mut m = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(m));
            }
            loop {
                skip_ws(b, i);
                let k = parse_string(b, i)?;
                expect(b, i, b':')?;
                m.push((k, parse_value(b, i)?));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(m));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut v = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(v));
            }
            loop {
                v.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(v));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, i)?)),
        Some(b'n') if b[*i..].starts_with(b"null") => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(b't') if b[*i..].starts_with(b"true") => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*i..].starts_with(b"false") => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some(_) => {
            let start = *i;
            while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                *i += 1;
            }
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|t| t.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        None => Err("unexpected end of input".into()),
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    *i += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*i) {
        *i += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let at = *i - 1;
                let e = *b.get(*i).ok_or("unterminated escape")?;
                *i += 1;
                out.push(match e {
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    // The harness never emits \uXXXX (or anything else):
                    // reject rather than silently decoding `A` as a
                    // literal 'u' — a corrupt baseline must fail the parse,
                    // not produce a baseline with mangled metric names.
                    other => {
                        return Err(format!(
                            "unsupported escape '\\{}' in string at byte {at}",
                            other as char
                        ))
                    }
                });
            }
            _ => out.push(c as char),
        }
    }
    Err("unterminated string".into())
}

/// Default fractional regression tolerance of the gate (+30 %).
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// Default committed-baseline path, relative to the workspace root.
pub const DEFAULT_BASELINE: &str = "results/BENCH_baseline.json";

/// Resolve the gate tolerance from a `BENCH_GATE_TOLERANCE` override.
///
/// Accepts any finite, non-negative fraction (`"0.5"` = +50 %; `"0"` =
/// strict: any slowdown fails). Unset, unparsable, negative, or
/// non-finite values fall back to [`DEFAULT_TOLERANCE`] — a garbled CI
/// variable must tighten nothing and loosen nothing silently.
pub fn tolerance_from(var: Option<&str>) -> f64 {
    match var.and_then(|v| v.trim().parse::<f64>().ok()) {
        Some(t) if t.is_finite() && t >= 0.0 => t,
        _ => DEFAULT_TOLERANCE,
    }
}

/// Resolve the baseline path from a `BENCH_BASELINE` override. Unset or
/// blank values fall back to [`DEFAULT_BASELINE`]; surrounding whitespace
/// is trimmed.
pub fn baseline_path_from(var: Option<&str>) -> String {
    match var {
        Some(p) if !p.trim().is_empty() => p.trim().to_string(),
        _ => DEFAULT_BASELINE.to_string(),
    }
}

/// One gated data point.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Flat id, e.g. `micro/mailbox/wildcard_scan_32_pending` or
    /// `largep/tbl0/MPI_Comm_split/4096`.
    pub id: String,
    /// Nanoseconds (per iteration for criterion metrics, virtual ns for
    /// figure tables), or a raw count for exact metrics.
    pub ns: f64,
    /// Exact-equality metric: a deterministic model counter (unit
    /// `"count"` — messages, bytes, epochs, …) where **any** drift in
    /// either direction is a model change. The gate compares these at
    /// zero tolerance, ignoring `BENCH_GATE_TOLERANCE`.
    pub exact: bool,
    /// Throughput metric (unit `"per_s"` — e.g. the fleet's
    /// universes/sec): **higher is better**, so the gate inverts the
    /// comparison and fails on a *drop* beyond the tolerance.
    pub rate: bool,
}

/// Extract metrics from either artefact flavour: the criterion shim's
/// `{"bench", "benchmarks": [{"id", "ns_per_iter"}]}` or the figure
/// harness's `{"bench", "tables": [{"title", "unit", "series", "rows"}]}`.
/// Wall-clock tables (unit `"s"`) are excluded — they measure the host,
/// not the model. Tables in unit `"count"` are deterministic model
/// counters and become [`Metric::exact`] zero-tolerance metrics; tables
/// in unit `"per_s"` are throughputs and become [`Metric::rate`]
/// higher-is-better metrics.
pub fn metrics_of(doc: &Json) -> Vec<Metric> {
    let bench = doc.get("bench").map_or("", Json::str);
    let mut out = Vec::new();
    for b in doc.get("benchmarks").map_or(&[][..], Json::arr) {
        if let (id, Some(ns)) = (
            b.get("id").map_or("", Json::str),
            b.get("ns_per_iter").and_then(Json::num),
        ) {
            out.push(Metric {
                id: format!("{bench}/{id}"),
                ns,
                exact: false,
                rate: false,
            });
        }
    }
    for (ti, t) in doc
        .get("tables")
        .map_or(&[][..], Json::arr)
        .iter()
        .enumerate()
    {
        let unit = t.get("unit").map_or("", Json::str);
        if unit == "s" {
            continue;
        }
        let exact = unit == "count";
        let rate = unit == "per_s";
        let scale = if unit == "ms" { 1e6 } else { 1.0 };
        let series: Vec<&str> = t
            .get("series")
            .map_or(&[][..], Json::arr)
            .iter()
            .map(Json::str)
            .collect();
        for row in t.get("rows").map_or(&[][..], Json::arr) {
            let x = row.get("x").and_then(Json::num).unwrap_or(0.0);
            for (si, v) in row
                .get("values")
                .map_or(&[][..], Json::arr)
                .iter()
                .enumerate()
            {
                if let Some(v) = v.num() {
                    let name = series.get(si).copied().unwrap_or("?");
                    out.push(Metric {
                        id: format!("{bench}/tbl{ti}/{name}/{x}"),
                        ns: v * scale,
                        exact,
                        rate,
                    });
                }
            }
        }
    }
    out
}

/// Read metrics straight from a baseline document
/// (`{"metrics": [{"id", "ns", "exact"?, "rate"?}]}`). Missing `"exact"`
/// and `"rate"` members read as `false`, so baselines written before
/// those metric kinds existed keep working.
pub fn baseline_metrics(doc: &Json) -> Vec<Metric> {
    doc.get("metrics")
        .map_or(&[][..], Json::arr)
        .iter()
        .filter_map(|m| {
            Some(Metric {
                id: m.get("id")?.str().to_string(),
                ns: m.get("ns").and_then(Json::num)?,
                exact: matches!(m.get("exact"), Some(Json::Bool(true))),
                rate: matches!(m.get("rate"), Some(Json::Bool(true))),
            })
        })
        .collect()
}

/// Serialise metrics as a baseline document.
pub fn baseline_json(metrics: &[Metric]) -> String {
    let mut out = String::from("{\"metrics\":[\n");
    for (i, m) in metrics.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "  {{\"id\":{:?},\"ns\":{:.3}", m.id, m.ns);
        if m.exact {
            out.push_str(",\"exact\":true");
        }
        if m.rate {
            out.push_str(",\"rate\":true");
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Outcome of one metric's comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// Within tolerance (delta fraction recorded).
    Ok(f64),
    /// Slower than baseline by more than the tolerance.
    Regressed(f64),
    /// In the baseline but absent from the current run.
    Missing,
    /// In the current run but not the baseline (informational).
    New,
}

/// Compare a run against the baseline. `tolerance` is fractional: `0.30`
/// fails anything more than 30 % slower than its baseline value. Exact
/// metrics (deterministic model counters) ignore the tolerance entirely:
/// any difference — faster, slower, either direction — is a failure,
/// because a drifted counter means the model computed something else.
/// Rate metrics invert the sign: a *drop* of more than the tolerance
/// (throughput lost) fails, a gain never does.
pub fn compare(baseline: &[Metric], current: &[Metric], tolerance: f64) -> Vec<(String, Verdict)> {
    let mut rows = Vec::new();
    for b in baseline {
        match current.iter().find(|c| c.id == b.id) {
            Some(c) if b.exact => {
                rows.push((
                    b.id.clone(),
                    if c.ns == b.ns {
                        Verdict::Ok(0.0)
                    } else if b.ns > 0.0 {
                        Verdict::Regressed((c.ns - b.ns) / b.ns)
                    } else {
                        Verdict::Regressed(f64::INFINITY)
                    },
                ));
            }
            Some(c) if b.ns > 0.0 => {
                let delta = (c.ns - b.ns) / b.ns;
                let regressed = if b.rate {
                    delta < -tolerance
                } else {
                    delta > tolerance
                };
                rows.push((
                    b.id.clone(),
                    if regressed {
                        Verdict::Regressed(delta)
                    } else {
                        Verdict::Ok(delta)
                    },
                ));
            }
            // Zero-cost baseline: any positive current value is an
            // unbounded relative regression, not a free pass. (For a
            // rate metric the sign flips: rising from zero throughput
            // is strictly an improvement.)
            Some(c) if c.ns > 0.0 && !b.rate => {
                rows.push((b.id.clone(), Verdict::Regressed(f64::INFINITY)));
            }
            Some(_) => rows.push((b.id.clone(), Verdict::Ok(0.0))),
            None => rows.push((b.id.clone(), Verdict::Missing)),
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.id == c.id) {
            rows.push((c.id.clone(), Verdict::New));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A non-exact (tolerance-gated) metric literal.
    fn m(id: &str, ns: f64) -> Metric {
        Metric {
            id: id.into(),
            ns,
            exact: false,
            rate: false,
        }
    }

    /// An exact (zero-tolerance model-counter) metric literal.
    fn mx(id: &str, ns: f64) -> Metric {
        Metric {
            id: id.into(),
            ns,
            exact: true,
            rate: false,
        }
    }

    /// A rate (higher-is-better throughput) metric literal.
    fn mr(id: &str, per_s: f64) -> Metric {
        Metric {
            id: id.into(),
            ns: per_s,
            exact: false,
            rate: true,
        }
    }

    #[test]
    fn parses_harness_output() {
        let doc = parse(
            r#"{"bench":"micro","wall_clock_s":1.5,
                "benchmarks":[{"id":"group/subrange","ns_per_iter":12.5},
                              {"id":"skipped","ns_per_iter":null}]}"#,
        )
        .unwrap();
        let m = metrics_of(&doc);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].id, "micro/group/subrange");
        assert_eq!(m[0].ns, 12.5);
    }

    #[test]
    fn parses_figure_tables_and_skips_wall_clock() {
        let doc = parse(
            r#"{"bench":"largep","workers":1,"wall_clock_s":9.0,"tables":[
                {"title":"comms","xlabel":"p","unit":"ms","series":["RBC","split"],
                 "rows":[{"x":1024,"values":[0.0001,null]},{"x":2048,"values":[0.0001,1.5]}]},
                {"title":"wall","xlabel":"p","unit":"s","series":["w"],
                 "rows":[{"x":1024,"values":[3.5]}]}]}"#,
        )
        .unwrap();
        let m = metrics_of(&doc);
        let ids: Vec<&str> = m.iter().map(|x| x.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "largep/tbl0/RBC/1024",
                "largep/tbl0/RBC/2048",
                "largep/tbl0/split/2048"
            ]
        );
        // ms normalised to ns.
        assert_eq!(m[2].ns, 1.5e6);
    }

    #[test]
    fn baseline_roundtrip() {
        let metrics = vec![
            m("micro/a \"quoted\"", 1.5),
            m("largep/tbl0/x/1", 2e6),
            mx("tracevol/tbl0/msgs/4096", 4095.0),
            mr("fleet/tbl0/universes_per_s/4", 12.5),
        ];
        let doc = parse(&baseline_json(&metrics)).unwrap();
        assert_eq!(baseline_metrics(&doc), metrics);
    }

    #[test]
    fn unknown_escapes_are_parse_errors_not_silent_chars() {
        // `\u0041` must not silently decode as a literal 'u' + "0041".
        let err = parse(r#"{"metrics":[{"id":"a\u0041","ns":1.0}]}"#).unwrap_err();
        assert!(err.contains("\\u"), "{err}");
        // Any other unknown escape is rejected the same way.
        let err = parse(r#"{"id":"a\x41"}"#).unwrap_err();
        assert!(err.contains("\\x"), "{err}");
        // A string ending in a lone backslash is an unterminated escape.
        let err = parse("{\"id\":\"a\\").unwrap_err();
        assert!(err.contains("unterminated escape"), "{err}");
    }

    #[test]
    fn baseline_without_exact_member_reads_as_inexact() {
        // Baselines written before exact metrics existed must stay valid.
        let doc = parse(r#"{"metrics":[{"id":"a","ns":1.0}]}"#).unwrap();
        assert_eq!(baseline_metrics(&doc), vec![m("a", 1.0)]);
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let base = vec![m("a", 100.0), m("b", 100.0), m("gone", 1.0)];
        let cur = vec![
            m("a", 129.0), // +29% — within 30%
            m("b", 131.0), // +31% — regression
            m("fresh", 1.0),
        ];
        let rows = compare(&base, &cur, 0.30);
        assert!(matches!(rows[0].1, Verdict::Ok(d) if (d - 0.29).abs() < 1e-9));
        assert!(matches!(rows[1].1, Verdict::Regressed(d) if (d - 0.31).abs() < 1e-9));
        assert_eq!(rows[2].1, Verdict::Missing);
        assert_eq!(rows[3].1, Verdict::New);
    }

    #[test]
    fn zero_baseline_is_not_a_free_pass() {
        let base = vec![m("zero", 0.0), m("still_zero", 0.0)];
        let cur = vec![m("zero", 5.0), m("still_zero", 0.0)];
        let rows = compare(&base, &cur, 0.30);
        assert!(matches!(rows[0].1, Verdict::Regressed(d) if d.is_infinite()));
        assert_eq!(rows[1].1, Verdict::Ok(0.0));
    }

    #[test]
    fn exact_metrics_fail_on_any_drift() {
        // A deterministic model counter may not move at all — in either
        // direction, by any amount, under any tolerance override.
        let base = vec![mx("msgs", 1000.0), mx("bytes", 8000.0), mx("was_zero", 0.0)];
        let cur = vec![
            mx("msgs", 1000.0),  // identical — fine
            mx("bytes", 7999.0), // one byte *fewer* — still a failure
            mx("was_zero", 1.0), // zero baseline drifted
        ];
        let rows = compare(&base, &cur, tolerance_from(Some("1000000")));
        assert_eq!(rows[0].1, Verdict::Ok(0.0));
        assert!(matches!(rows[1].1, Verdict::Regressed(d) if d < 0.0));
        assert!(matches!(rows[2].1, Verdict::Regressed(d) if d.is_infinite()));
    }

    #[test]
    fn rate_metrics_fail_on_drops_not_gains() {
        // Throughput: losing more than the tolerance fails; any gain —
        // however large — passes, as does rising from a zero baseline.
        let base = vec![
            mr("ups", 100.0),
            mr("down_ok", 100.0),
            mr("up", 100.0),
            mr("was_zero", 0.0),
        ];
        let cur = vec![
            mr("ups", 69.0),      // -31% — throughput regression
            mr("down_ok", 71.0),  // -29% — within tolerance
            mr("up", 500.0),      // +400% — never a failure
            mr("was_zero", 50.0), // zero baseline rose — improvement
        ];
        let rows = compare(&base, &cur, 0.30);
        assert!(matches!(rows[0].1, Verdict::Regressed(d) if (d + 0.31).abs() < 1e-9));
        assert!(matches!(rows[1].1, Verdict::Ok(d) if (d + 0.29).abs() < 1e-9));
        assert!(matches!(rows[2].1, Verdict::Ok(d) if (d - 4.0).abs() < 1e-9));
        assert_eq!(rows[3].1, Verdict::Ok(0.0));
    }

    #[test]
    fn per_s_tables_become_rate_metrics() {
        let doc = parse(
            r#"{"bench":"fleet","tables":[
                {"title":"throughput","xlabel":"inflight","unit":"per_s",
                 "series":["universes_per_s"],
                 "rows":[{"x":4,"values":[12.5]}]}]}"#,
        )
        .unwrap();
        let ms = metrics_of(&doc);
        assert_eq!(ms, vec![mr("fleet/tbl0/universes_per_s/4", 12.5)]);
    }

    #[test]
    fn count_tables_become_exact_metrics() {
        let doc = parse(
            r#"{"bench":"tracevol","tables":[
                {"title":"msgs","xlabel":"p","unit":"count","series":["bcast"],
                 "rows":[{"x":64,"values":[63]}]},
                {"title":"time","xlabel":"p","unit":"ms","series":["bcast"],
                 "rows":[{"x":64,"values":[1.5]}]}]}"#,
        )
        .unwrap();
        let ms = metrics_of(&doc);
        assert_eq!(ms[0], mx("tracevol/tbl0/bcast/64", 63.0));
        // `count` values are raw counts, never ms-scaled.
        assert_eq!(ms[1], m("tracevol/tbl1/bcast/64", 1.5e6));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123 456").is_err());
    }

    #[test]
    fn tolerance_override_parses_valid_fractions() {
        assert_eq!(tolerance_from(Some("0.5")), 0.5);
        assert_eq!(tolerance_from(Some(" 0.10 ")), 0.10);
        // "0" is a legal strict gate, not a fallback trigger.
        assert_eq!(tolerance_from(Some("0")), 0.0);
        assert_eq!(tolerance_from(Some("2")), 2.0);
    }

    #[test]
    fn tolerance_override_falls_back_on_garbage() {
        assert_eq!(tolerance_from(None), DEFAULT_TOLERANCE);
        assert_eq!(tolerance_from(Some("")), DEFAULT_TOLERANCE);
        assert_eq!(tolerance_from(Some("thirty percent")), DEFAULT_TOLERANCE);
        // A negative tolerance would flag *speed-ups* as regressions;
        // non-finite ones would disable the gate entirely.
        assert_eq!(tolerance_from(Some("-0.2")), DEFAULT_TOLERANCE);
        assert_eq!(tolerance_from(Some("inf")), DEFAULT_TOLERANCE);
        assert_eq!(tolerance_from(Some("NaN")), DEFAULT_TOLERANCE);
    }

    #[test]
    fn baseline_path_override() {
        assert_eq!(baseline_path_from(None), DEFAULT_BASELINE);
        assert_eq!(baseline_path_from(Some("")), DEFAULT_BASELINE);
        assert_eq!(baseline_path_from(Some("   ")), DEFAULT_BASELINE);
        assert_eq!(baseline_path_from(Some("other/b.json")), "other/b.json");
        assert_eq!(baseline_path_from(Some(" other/b.json ")), "other/b.json");
    }

    #[test]
    fn zero_baseline_regression_survives_any_tolerance() {
        // The zero-baseline rule is absolute: a metric that was free and
        // now costs something is an infinite relative regression, and no
        // BENCH_GATE_TOLERANCE override can wave it through.
        let base = vec![m("zero", 0.0)];
        let cur = vec![m("zero", 0.001)];
        let rows = compare(&base, &cur, tolerance_from(Some("1000000")));
        assert!(matches!(rows[0].1, Verdict::Regressed(d) if d.is_infinite()));
    }
}
