//! `cargo bench` entry point: regenerates all paper figures with reduced
//! sweeps (quick mode) so the whole run stays in minutes. Run the
//! `all_figures` binary (or the per-figure binaries) in release mode for
//! the full sweeps recorded in EXPERIMENTS.md.
fn main() {
    if std::env::var("BENCH_QUICK").is_err() {
        std::env::set_var("BENCH_QUICK", "1");
    }
    rbc_bench::figs::fig4::run();
    rbc_bench::figs::fig5::run();
    rbc_bench::figs::fig6::run();
    rbc_bench::figs::fig7::run();
    rbc_bench::figs::fig8::run();
    rbc_bench::figs::fig9::run();
    rbc_bench::figs::ablations::run();
}
