//! Criterion microbenchmarks of the wall-clock hot paths: the O(1)
//! communicator operations the paper's contribution rests on, the local
//! phases of JQuick, and the matching engine of the substrate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use jquick::assign::greedy_assignment;
use jquick::layout::{Layout, TaskRange};
use jquick::partition::{partition, sample_median, Strictness};
use mpisim::context::CtxPool;
use mpisim::mailbox::Mailbox;
use mpisim::msg::{ContextId, MatchPattern, Message, SrcFilter};
use mpisim::{Group, Time};

fn bench_group_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("group");
    // The heart of RBC: O(1) subranging of a Range-format group ...
    let range = Group::range(0, 1, 1 << 20);
    g.bench_function("subrange_range_format", |b| {
        b.iter(|| black_box(&range).subrange(black_box(17), black_box(1 << 19), 1))
    });
    // ... versus the explicit O(p) construction native MPI performs.
    for p in [1usize << 10, 1 << 14] {
        g.bench_with_input(BenchmarkId::new("dense_group_build", p), &p, |b, &p| {
            b.iter(|| Group::from_ranks(black_box((0..p).rev().collect::<Vec<_>>())))
        });
    }
    g.bench_function("translate_strided", |b| {
        let s = Group::range(3, 7, 1 << 16);
        b.iter(|| s.translate(black_box(12345)))
    });
    g.bench_function("inverse_strided", |b| {
        let s = Group::range(3, 7, 1 << 16);
        b.iter(|| s.inverse(black_box(3 + 7 * 12345)))
    });
    g.finish();
}

fn bench_context_masks(c: &mut Criterion) {
    let mut g = c.benchmark_group("context");
    g.bench_function("mask_and_plus_lowest_free", |b| {
        let mut a = CtxPool::new();
        for id in 1..600 {
            a.mark_used(id);
        }
        let snap_a = a.snapshot();
        let snap_b = CtxPool::new().snapshot();
        b.iter(|| {
            let r = mpisim::context::mask_and(black_box(&snap_a), black_box(&snap_b));
            CtxPool::lowest_free(&r).unwrap()
        })
    });
    g.finish();
}

fn bench_mailbox(c: &mut Criterion) {
    let mut g = c.benchmark_group("mailbox");
    g.bench_function("push_claim_exact", |b| {
        let mb = Mailbox::new();
        let pat = MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Exact(1),
            tag: 7,
        };
        b.iter(|| {
            mb.push(Message::new::<u64>(
                1,
                7,
                ContextId::WORLD,
                vec![42],
                Time::ZERO,
                Time(10),
            ));
            mb.try_claim(&pat).unwrap()
        })
    });
    g.bench_function("wildcard_scan_32_pending", |b| {
        let mb = Mailbox::new();
        for src in 0..32 {
            mb.push(Message::new::<u64>(
                src,
                9,
                ContextId::WORLD,
                vec![src as u64],
                Time::ZERO,
                Time(100 - src as u64),
            ));
        }
        let pat = MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Any,
            tag: 9,
        };
        b.iter(|| {
            let m = mb.try_claim(&pat).unwrap();
            let src = m.src_global;
            mb.push(m); // put it back to keep the population stable
            src
        })
    });
    g.finish();
}

fn bench_jquick_local(c: &mut Criterion) {
    let mut g = c.benchmark_group("jquick_local");
    let data: Vec<f64> = (0..(1 << 16))
        .map(|i| ((i * 2654435761u64) % 100_000) as f64)
        .collect();
    g.bench_function("partition_64k", |b| {
        b.iter(|| partition(black_box(data.clone()), &50_000.0, Strictness::Lt))
    });
    g.bench_function("sample_median_256", |b| {
        let sample: Vec<f64> = data.iter().take(256).copied().collect();
        b.iter(|| sample_median(black_box(sample.clone())))
    });
    g.bench_function("greedy_assignment", |b| {
        let layout = Layout::new(1 << 20, 1 << 10);
        let task = TaskRange {
            lo: 12_345,
            hi: 900_000,
        };
        b.iter(|| {
            greedy_assignment(
                black_box(&layout),
                black_box(&task),
                300_000,
                500,
                400,
                600_000,
                444_444,
            )
        })
    });
    g.bench_function("layout_owner", |b| {
        let layout = Layout::new((1 << 30) + 7, 12_347);
        b.iter(|| layout.owner(black_box(987_654_321)))
    });
    g.finish();
}

fn bench_exchange_encoding(c: &mut Criterion) {
    use jquick::exchange::{decode_runs, encode_runs};
    let mut g = c.benchmark_group("staged_exchange");
    // The shape a bisection round ships: a few contiguous partition
    // chunks. 64k elements in 4 runs — the wire format collapses the old
    // 16-byte (value, pos) pairs into 8-byte values + 4 run headers,
    // halving staged-path bytes.
    let tagged: Vec<(u64, u64)> = (0..4u64)
        .flat_map(|chunk| {
            let base = chunk * 1_000_000;
            (base..base + (1 << 14)).map(move |p| (p * 7, p))
        })
        .collect();
    g.bench_function("encode_runs_64k_4chunks", |b| {
        b.iter(|| encode_runs(black_box(tagged.clone())))
    });
    let (runs, vals) = encode_runs(tagged.clone());
    assert_eq!(runs.len(), 4);
    // Report the compression itself alongside the timing: pair bytes vs
    // encoded bytes (values + headers).
    let pair_bytes = tagged.len() * std::mem::size_of::<(u64, u64)>();
    let run_bytes = vals.len() * 8 + runs.len() * 16;
    println!(
        "staged_exchange/bytes: pairs {pair_bytes} -> runs {run_bytes} ({:.1}% of pairs)",
        100.0 * run_bytes as f64 / pair_bytes as f64
    );
    g.bench_function("decode_runs_64k_4chunks", |b| {
        b.iter(|| decode_runs(black_box(&runs), black_box(vals.clone())))
    });
    g.finish();
}

/// The pooled-vs-fresh delta of the payload path, measured on the pool
/// primitive itself: a `take_vec` + `recycle_vec` round-trip (steady
/// state: thread-local size-class hit, no allocator call) against the
/// allocate-and-drop it replaces under every `Message::new` and staged
/// encode. The small sizes bracket the classes the storms use (where
/// glibc's tcache is competitive and the pool buys determinism, not
/// speed); the 512 KiB class is past the mmap threshold, where a fresh
/// allocation pays a syscall plus page faults every round-trip.
fn bench_payload_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool");
    for shift in [4usize, 10, 16] {
        let n = 1usize << shift;
        g.bench_with_input(BenchmarkId::new("take_recycle", n), &n, |b, &n| {
            // Warm the size class so the measurement is the steady state.
            mpisim::pool::recycle_vec(Vec::<u64>::with_capacity(n));
            b.iter(|| {
                let mut v: Vec<u64> = mpisim::pool::take_vec(n);
                v.push(black_box(7));
                mpisim::pool::recycle_vec(v);
            })
        });
        g.bench_with_input(BenchmarkId::new("fresh_alloc", n), &n, |b, &n| {
            b.iter(|| {
                let mut v: Vec<u64> = Vec::with_capacity(n);
                v.push(black_box(7));
                drop(black_box(v));
            })
        });
    }
    g.finish();
}

/// The PR 8 commit-phase fan-out storm: every rank sends 4 one-word
/// messages per step to deterministic offsets with colliding tags, then
/// wildcard-drains its in-degree — the exact shape `tests/commit_shard.rs`
/// uses. The storm repeats for several rounds inside one universe so the
/// epoch commit (the ordering step under measurement) amortises the
/// fiber/universe setup out of the numbers.
fn commit_storm(p: usize, per: usize, algo: mpisim::SortAlgo) -> mpisim::Time {
    use mpisim::{SimConfig, Src, Transport, Universe};
    const OFFSETS: [usize; 4] = [1, 4, 9, 16];
    const ROUNDS: usize = 4;
    let cfg = SimConfig::cooperative()
        .with_seed(7)
        .with_workers(4)
        .with_sort_algo(algo);
    let res = Universe::run(p, cfg, |env| {
        let w = &env.world;
        let r = w.rank();
        for _round in 0..ROUNDS {
            for i in 0..per {
                for (k, off) in OFFSETS.iter().enumerate() {
                    w.send(
                        &[(r * 100 + i * 10 + k) as u64],
                        (r + off) % p,
                        (k % 3) as u64,
                    )
                    .unwrap();
                }
            }
            for t in 0..3u64 {
                let n = per
                    * OFFSETS
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| k % 3 == t as usize)
                        .count();
                for _ in 0..n {
                    let (v, _) = w.recv::<u64>(Src::Any, t).unwrap();
                    mpisim::pool::recycle_vec(v);
                }
            }
        }
    });
    res.clocks[0]
}

fn bench_commit_sort(c: &mut Criterion) {
    use mpisim::SortAlgo;
    let mut g = c.benchmark_group("commit_sort");
    // (ranks, steps): m = p·per·4 staged messages per epoch wave, across
    // p tasks — small/medium/wide shapes. The 8192-message epochs cross
    // the publish threshold and exercise the parallel chunked merge
    // round; the smaller ones merge inline on the finishing worker.
    for &(p, per) in &[(64usize, 2usize), (64, 8), (64, 32), (256, 8)] {
        for (name, algo) in [("merge", SortAlgo::Merge), ("sort", SortAlgo::Sort)] {
            g.bench_with_input(
                BenchmarkId::new(name, format!("p{p}x{per}")),
                &(p, per),
                |b, &(p, per)| b.iter(|| commit_storm(black_box(p), black_box(per), algo)),
            );
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_group_ops,
    bench_context_masks,
    bench_mailbox,
    bench_jquick_local,
    bench_exchange_encoding,
    bench_payload_pool,
    bench_commit_sort
);
criterion_main!(benches);
