//! Integration tests of the §VI proposal, `MPI_Icomm_create_group`,
//! exercising the properties the paper claims for it:
//!
//! * constant-time, communication-free creation for process ranges;
//! * full MPI semantics (no tag restrictions between the new communicators);
//! * simultaneous creations all make progress (no serialisation);
//! * recursive creation chains (quicksort-style) without any collective
//!   operations on the critical path.

use mpisim::icomm::icomm_create_group;
use mpisim::nbcoll::Progress;
use mpisim::{ops, Group, Src, Time, Transport, Universe};

#[test]
fn recursive_range_creation_is_communication_free() {
    // Halve the communicator log2(p) times — the recursion pattern of
    // hypercube quicksort — using only §VI range creations. Total virtual
    // time must stay below one message startup (α = 10 µs).
    let p = 16usize;
    let res = Universe::run_default(p, move |env| {
        let mut comm = env.world.clone();
        let t0 = env.now();
        let mut lo = 0usize;
        let mut size = p;
        while size > 1 {
            let half = size / 2;
            let (f, len) = if comm.rank() < half {
                (lo, half)
            } else {
                (lo + half, size - half)
            };
            let group = Group::range(f, 1, len);
            let mut req = icomm_create_group(&comm, &group, 3).unwrap();
            assert!(req.poll().unwrap(), "range case completes instantly");
            comm = req.take().unwrap();
            lo = f;
            size = len;
        }
        let elapsed = env.now() - t0;
        assert!(
            elapsed < Time::from_micros(10),
            "4 levels of communicator creation cost {elapsed} — should be local"
        );
        format!("{}", comm.ctx())
    });
    // Every leaf communicator has a distinct context ID.
    let mut ctxs = res.per_rank.clone();
    ctxs.sort();
    ctxs.dedup();
    assert_eq!(ctxs.len(), p, "leaf contexts must be pairwise distinct");
}

#[test]
fn derived_communicators_do_not_interfere() {
    // Full MPI semantics: same tag, same ranks, sibling communicators —
    // messages must not cross, because each has its own wide context ID.
    let res = Universe::run_default(4, |env| {
        let w = &env.world;
        let top = Group::range(0, 1, 4);
        let all = icomm_create_group(w, &top, 1).unwrap().wait_comm().unwrap();
        let sub = if w.rank() < 2 {
            Group::range(0, 1, 2)
        } else {
            Group::range(2, 1, 2)
        };
        let half = icomm_create_group(&all, &sub, 1)
            .unwrap()
            .wait_comm()
            .unwrap();
        // Rank 0 sends on BOTH communicators with the same tag.
        if w.rank() == 0 {
            all.send(&[111u64], 1, 9).unwrap();
            half.send(&[222u64], 1, 9).unwrap();
            (0, 0)
        } else if w.rank() == 1 {
            // Receive on `half` first — context matching must pick 222.
            let (h, _) = half.recv::<u64>(Src::Rank(0), 9).unwrap();
            let (a, _) = all.recv::<u64>(Src::Rank(0), 9).unwrap();
            (h[0], a[0])
        } else {
            (0, 0)
        }
    });
    assert_eq!(res.per_rank[1], (222, 111));
}

#[test]
fn irregular_groups_progress_concurrently_and_stay_isolated() {
    let res = Universe::run_default(6, |env| {
        let w = &env.world;
        let ga = Group::from_ranks(vec![0, 2, 4, 1]); // irregular order
        let gb = Group::from_ranks(vec![1, 3, 5, 2]); // overlaps ga in {1, 2}
        let mut reqs = Vec::new();
        if ga.contains_global(w.rank()) {
            reqs.push((icomm_create_group(w, &ga, 11).unwrap(), 'a'));
        }
        if gb.contains_global(w.rank()) {
            reqs.push((icomm_create_group(w, &gb, 13).unwrap(), 'b'));
        }
        let mut comms = Vec::new();
        while !reqs.is_empty() {
            let mut i = 0;
            while i < reqs.len() {
                if reqs[i].0.poll().unwrap() {
                    let (mut req, label) = reqs.remove(i);
                    comms.push((label, req.take().unwrap()));
                } else {
                    i += 1;
                }
            }
            std::thread::yield_now();
        }
        comms.sort_by_key(|(l, _)| *l);
        comms
            .into_iter()
            .map(|(l, c)| {
                // Distinct contexts: collectives with default tags on both
                // comms at once must not interfere, even on ranks 1 and 2
                // which sit in both groups.
                let sum = c.allreduce(&[w.rank() as u64], ops::sum::<u64>()).unwrap()[0];
                (l, sum)
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(res.per_rank[0], vec![('a', 2 + 4 + 1)]);
    assert_eq!(res.per_rank[1], vec![('a', 7), ('b', 1 + 3 + 5 + 2)]);
    assert_eq!(res.per_rank[2], vec![('a', 7), ('b', 11)]);
    assert_eq!(res.per_rank[5], vec![('b', 11)]);
}

#[test]
fn range_case_cost_independent_of_group_size() {
    // The §VI range path must be O(1): creation time must not grow with p.
    let cost_at = |p: usize| {
        let res = Universe::run_default(p, move |env| {
            let w = &env.world;
            let g = if w.rank() < p / 2 {
                Group::range(0, 1, p / 2)
            } else {
                Group::range(p / 2, 1, p - p / 2)
            };
            let t0 = env.now();
            let req = icomm_create_group(w, &g, 5).unwrap();
            assert!(req.is_done());
            env.now() - t0
        });
        res.per_rank.into_iter().max().unwrap()
    };
    let small = cost_at(4);
    let large = cost_at(256);
    assert_eq!(
        small, large,
        "range creation must be O(1): {small} vs {large}"
    );
}

#[test]
fn strided_subgroup_of_strided_parent_still_constant_time() {
    // Ranges compose: evens of a communicator over the evens.
    let res = Universe::run_default(8, |env| {
        let w = &env.world;
        if w.rank() % 2 != 0 {
            return None;
        }
        let evens = icomm_create_group(w, &Group::range(0, 2, 4), 21)
            .unwrap()
            .wait_comm()
            .unwrap();
        // {0, 4} is ranks {0, 2} of `evens` — NOT contiguous, so this takes
        // the broadcast path; {0, 2} is ranks {0, 1} — contiguous, local.
        if [0usize, 2].contains(&w.rank()) {
            let g = Group::range(0, 2, 2);
            let req = icomm_create_group(&evens, &g, 23).unwrap();
            let done_immediately = req.is_done();
            let c = req.wait_comm().unwrap();
            let sum = c.allreduce(&[w.rank() as u64], ops::sum::<u64>()).unwrap()[0];
            Some((done_immediately, sum))
        } else {
            Some((true, 0))
        }
    });
    assert_eq!(res.per_rank[0], Some((true, 2)));
    assert_eq!(res.per_rank[2], Some((true, 2)));
    assert_eq!(res.per_rank[1], None);
}
