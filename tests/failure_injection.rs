//! Failure injection: the simulator must fail loudly, not hang — and
//! every timeout or deadlock must carry a `RoundBlame` naming the ranks
//! the stalled operation was waiting on.

use std::time::Duration;

use mpisim::{
    nbcoll, ops, CommitAlgo, FaultPlan, MpiError, RankHealth, SimConfig, Src, Time, Transport,
    Universe,
};
use rbc::RbcComm;

fn short_timeout() -> SimConfig {
    SimConfig::default().with_timeout(Duration::from_millis(80))
}

#[test]
fn unmatched_recv_times_out_with_context() {
    let res = Universe::run(2, short_timeout(), |env| {
        let w = &env.world;
        if w.rank() == 0 {
            w.recv::<u64>(Src::Rank(1), 42).err()
        } else {
            None
        }
    });
    match &res.per_rank[0] {
        Some(MpiError::Timeout {
            rank, waited_for, ..
        }) => {
            assert_eq!(*rank, 0);
            assert!(waited_for.contains("tag=42"), "got: {waited_for}");
        }
        other => panic!("expected timeout, got {other:?}"),
    }
}

#[test]
fn mismatched_collective_times_out() {
    // Rank 1 never joins the barrier: rank 0's barrier must time out
    // instead of hanging forever.
    let res = Universe::run(2, short_timeout(), |env| {
        let w = &env.world;
        if w.rank() == 0 {
            w.barrier().err()
        } else {
            None
        }
    });
    assert!(matches!(res.per_rank[0], Some(MpiError::Timeout { .. })));
}

#[test]
fn type_mismatch_is_detected() {
    let res = Universe::run(2, short_timeout(), |env| {
        let w = &env.world;
        if w.rank() == 0 {
            w.send(&[1.5f64], 1, 7).unwrap();
            None
        } else {
            w.recv::<u32>(Src::Rank(0), 7).err()
        }
    });
    assert!(matches!(
        res.per_rank[1],
        Some(MpiError::TypeMismatch {
            expected: "u32",
            ..
        })
    ));
}

#[test]
fn invalid_rank_is_rejected_immediately() {
    let res = Universe::run_default(2, |env| {
        let w = &env.world;
        let send_err = w.send(&[1u64], 5, 0).err();
        let recv_err = w.recv::<u64>(Src::Rank(9), 0).err();
        (send_err, recv_err)
    });
    for (s, r) in res.per_rank {
        assert!(matches!(
            s,
            Some(MpiError::InvalidRank { rank: 5, size: 2 })
        ));
        assert!(matches!(
            r,
            Some(MpiError::InvalidRank { rank: 9, size: 2 })
        ));
    }
}

#[test]
fn rbc_split_out_of_range_is_usage_error() {
    let res = Universe::run_default(4, |env| {
        let world = RbcComm::create(&env.world);
        let too_big = world.split(0, 9).err();
        let inverted = world.split(3, 1).err();
        let zero_stride = world.split_strided(0, 3, 0).err();
        (too_big, inverted, zero_stride)
    });
    for (a, b, c) in res.per_rank {
        assert!(matches!(a, Some(MpiError::Usage(_))));
        assert!(matches!(b, Some(MpiError::Usage(_))));
        assert!(matches!(c, Some(MpiError::Usage(_))));
    }
}

#[test]
#[should_panic(expected = "rank failure")]
fn rank_panic_propagates_to_harness() {
    Universe::run_default(3, |env| {
        if env.rank() == 2 {
            panic!("rank failure");
        }
    });
}

#[test]
fn nonblocking_wait_times_out_rather_than_spinning_forever() {
    // A receive whose sender never sends: wait() must give up.
    let res = Universe::run(2, short_timeout(), |env| {
        let w = &env.world;
        if w.rank() == 0 {
            let req = w.irecv::<u64>(Src::Rank(1), 3);
            // wait() falls back to the blocking path with the configured
            // simulator timeout.
            req.wait().err()
        } else {
            None
        }
    });
    assert!(matches!(res.per_rank[0], Some(MpiError::Timeout { .. })));
}

/// Run a 4-rank receive cycle (a textbook deadlock) under the cooperative
/// backend and return each rank's `(rank, waited_for)` diagnostics.
fn coop_deadlock_diagnostics(algo: CommitAlgo, workers: usize) -> Vec<Option<(usize, String)>> {
    let cfg = SimConfig::cooperative()
        .with_commit_algo(algo)
        .with_workers(workers);
    Universe::run(4, cfg, |env| {
        let w = &env.world;
        let from = (w.rank() + 1) % 4;
        w.recv::<u64>(Src::Rank(from), 42).err().map(|e| match e {
            MpiError::Timeout {
                rank, waited_for, ..
            } => (rank, waited_for),
            other => panic!("expected Timeout, got {other:?}"),
        })
    })
    .per_rank
}

#[test]
fn coop_deadlock_diagnostics_exact_under_sharded_commit() {
    // Deadlock poisoning moved behind the sharded commit's merge barrier;
    // the diagnostics must stay *exact*: same rank, same `waited_for`
    // text, for every worker count — byte-identical to the serial oracle.
    let oracle = coop_deadlock_diagnostics(CommitAlgo::Serial, 1);
    for (r, d) in oracle.iter().enumerate() {
        let (rank, text) = d.as_ref().expect("every rank deadlocks");
        assert_eq!(*rank, r);
        assert!(
            text.contains("tag=42") && text.contains("cooperative deadlock"),
            "got: {text}"
        );
    }
    for workers in [1usize, 4, 8] {
        assert_eq!(
            oracle,
            coop_deadlock_diagnostics(CommitAlgo::Sharded, workers),
            "deadlock diagnostics diverged at {workers} workers"
        );
    }
}

/// Run a 4-rank iallreduce with rank 2 crash-stopped from the start and
/// collect, per rank, `(reported rank, blamed ranks, all-crashed?)`.
/// Every rank — the victim itself *and* the transitively stalled peers
/// (whose receive pattern points at a live-but-stuck neighbour) — must
/// blame exactly the crashed rank, thanks to the crash-priority rule.
fn crash_mid_iallreduce_blame(cfg: SimConfig) -> Vec<Option<(usize, Vec<usize>, bool)>> {
    let cfg = cfg.with_faults(FaultPlan::default().with_crash(2, Time::ZERO));
    Universe::run(4, cfg, |env| {
        let w = &env.world;
        let r = nbcoll::iallreduce(w, &[w.rank() as u64 + 1], 500, ops::sum::<u64>())
            .and_then(|sm| sm.wait_result());
        r.err().map(|e| match e {
            MpiError::Timeout { rank, blame, .. } => {
                let all_crashed = !blame.waiting_on.is_empty()
                    && blame
                        .waiting_on
                        .iter()
                        .all(|b| matches!(b.health, RankHealth::Crashed { .. }));
                (rank, blame.ranks(), all_crashed)
            }
            other => panic!("expected Timeout, got {other:?}"),
        })
    })
    .per_rank
}

#[test]
fn crash_mid_iallreduce_blames_exactly_the_crashed_rank_threaded() {
    for d in crash_mid_iallreduce_blame(short_timeout()) {
        let (rank, blamed, all_crashed) = d.expect("every rank must error");
        assert_eq!(blamed, vec![2], "rank {rank} blamed {blamed:?}");
        assert!(all_crashed, "rank {rank}: blame must report crashed health");
    }
}

#[test]
fn crash_mid_iallreduce_blames_exactly_the_crashed_rank_coop() {
    // The cooperative stagnation detector poisons the stalled ranks long
    // before any wall clock fires; diagnostics must be identical for
    // every worker count and commit algorithm.
    let oracle = crash_mid_iallreduce_blame(
        SimConfig::cooperative()
            .with_workers(1)
            .with_commit_algo(CommitAlgo::Serial),
    );
    for d in &oracle {
        let (rank, blamed, all_crashed) = d.as_ref().expect("every rank must error");
        assert_eq!(*blamed, vec![2], "rank {rank} blamed {blamed:?}");
        assert!(all_crashed, "rank {rank}: blame must report crashed health");
    }
    for workers in [4usize, 8] {
        let got = crash_mid_iallreduce_blame(
            SimConfig::cooperative()
                .with_workers(workers)
                .with_commit_algo(CommitAlgo::Sharded),
        );
        assert_eq!(oracle, got, "crash blame diverged at {workers} workers");
    }
}

/// Crash a rank mid-JQuick (50µs in — a few recursion messages deep at
/// α = 10µs) and require every failing rank's blame to name exactly the
/// victim, on both backends.
fn crash_mid_jquick_blame(cfg: SimConfig, victim: usize) -> Vec<Option<(Vec<usize>, bool)>> {
    let cfg = cfg.with_faults(FaultPlan::default().with_crash(victim, Time::from_micros(50)));
    let p = 8u64;
    let n = 64 * p;
    Universe::run(p as usize, cfg, move |env| {
        let w = &env.world;
        let data: Vec<u64> = (0..64).map(|i| (w.rank() as u64 + 1) * 1000 + i).collect();
        let r = jquick::jquick_sort(
            &jquick::RbcBackend,
            w,
            data,
            n,
            &jquick::JQuickConfig::default(),
        );
        r.err().map(|e| match e {
            MpiError::Timeout { blame, .. } => {
                let all_crashed = !blame.waiting_on.is_empty()
                    && blame
                        .waiting_on
                        .iter()
                        .all(|b| matches!(b.health, RankHealth::Crashed { .. }));
                (blame.ranks(), all_crashed)
            }
            other => panic!("expected Timeout, got {other:?}"),
        })
    })
    .per_rank
}

#[test]
fn crash_mid_jquick_blames_the_crashed_rank_threaded() {
    let diags = crash_mid_jquick_blame(short_timeout(), 5);
    let failed: Vec<_> = diags.iter().flatten().collect();
    assert!(!failed.is_empty(), "the crash must break the sort");
    for (blamed, all_crashed) in failed {
        assert_eq!(*blamed, vec![5], "blame must name exactly the victim");
        assert!(all_crashed, "blame must report crashed health");
    }
}

#[test]
fn crash_mid_jquick_blames_the_crashed_rank_coop() {
    let run = |workers: usize, algo: CommitAlgo| {
        crash_mid_jquick_blame(
            SimConfig::cooperative()
                .with_workers(workers)
                .with_commit_algo(algo),
            5,
        )
    };
    let oracle = run(1, CommitAlgo::Serial);
    let failed: Vec<_> = oracle.iter().flatten().collect();
    assert!(!failed.is_empty(), "the crash must break the sort");
    for (blamed, all_crashed) in failed {
        assert_eq!(*blamed, vec![5], "blame must name exactly the victim");
        assert!(all_crashed, "blame must report crashed health");
    }
    assert_eq!(
        oracle,
        run(8, CommitAlgo::Sharded),
        "jquick crash blame diverged under the sharded commit"
    );
}

#[test]
fn coop_timeout_after_real_traffic_identical_under_sharded_commit() {
    // Sharded commits with real deliveries happen first (a ring
    // exchange), *then* a rank waits forever: the poison must fire on
    // exactly the stuck ranks, with identical text under both commit
    // algorithms. Ranks 0 and 1 both wait on a tag nobody sends so the
    // poison pass wakes several blocked ranks in one commit.
    let run = |algo: CommitAlgo, workers: usize| {
        let cfg = SimConfig::cooperative()
            .with_commit_algo(algo)
            .with_workers(workers);
        Universe::run(8, cfg, |env| {
            let w = &env.world;
            let next = (w.rank() + 1) % 8;
            let prev = (w.rank() + 7) % 8;
            w.send(&[w.rank() as u64], next, 1).unwrap();
            let (v, _) = w.recv::<u64>(Src::Rank(prev), 1).unwrap();
            assert_eq!(v[0] as usize, prev);
            if w.rank() < 2 {
                w.recv::<u64>(Src::Any, 99).err().map(|e| match e {
                    MpiError::Timeout {
                        rank,
                        waited_for,
                        blame,
                        ..
                    } => (rank, waited_for, blame.ranks()),
                    other => panic!("expected Timeout, got {other:?}"),
                })
            } else {
                None
            }
        })
        .per_rank
    };
    let oracle = run(CommitAlgo::Serial, 1);
    for (r, d) in oracle.iter().enumerate() {
        if r < 2 {
            let (rank, text, blamed) = d.as_ref().expect("stuck ranks time out");
            assert_eq!(*rank, r);
            assert!(text.contains("tag=99"), "got: {text}");
            // No faults are armed, so a wildcard wait blames exactly the
            // other ranks of the communicator — no more, no fewer.
            let others: Vec<usize> = (0..8).filter(|&x| x != r).collect();
            assert_eq!(*blamed, others, "rank {r} blamed {blamed:?}");
        } else {
            assert!(d.is_none(), "rank {r} should have finished cleanly");
        }
    }
    for workers in [1usize, 4, 8] {
        assert_eq!(
            oracle,
            run(CommitAlgo::Sharded, workers),
            "timeout diagnostics diverged at {workers} workers"
        );
    }
}

#[test]
fn sort_with_wrong_global_count_fails_cleanly() {
    let res = Universe::run_default(3, |env| {
        let w = &env.world;
        // n says 30, but every rank passes only 5 elements (needs 10).
        jquick::jquick_sort(
            &jquick::RbcBackend,
            w,
            vec![1u64; 5],
            30,
            &jquick::JQuickConfig::default(),
        )
        .err()
    });
    for e in res.per_rank {
        assert!(matches!(e, Some(MpiError::Usage(_))));
    }
}
