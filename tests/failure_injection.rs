//! Failure injection: the simulator must fail loudly, not hang.

use std::time::Duration;

use mpisim::{CommitAlgo, MpiError, SimConfig, Src, Transport, Universe};
use rbc::RbcComm;

fn short_timeout() -> SimConfig {
    SimConfig::default().with_timeout(Duration::from_millis(80))
}

#[test]
fn unmatched_recv_times_out_with_context() {
    let res = Universe::run(2, short_timeout(), |env| {
        let w = &env.world;
        if w.rank() == 0 {
            w.recv::<u64>(Src::Rank(1), 42).err()
        } else {
            None
        }
    });
    match &res.per_rank[0] {
        Some(MpiError::Timeout {
            rank, waited_for, ..
        }) => {
            assert_eq!(*rank, 0);
            assert!(waited_for.contains("tag=42"), "got: {waited_for}");
        }
        other => panic!("expected timeout, got {other:?}"),
    }
}

#[test]
fn mismatched_collective_times_out() {
    // Rank 1 never joins the barrier: rank 0's barrier must time out
    // instead of hanging forever.
    let res = Universe::run(2, short_timeout(), |env| {
        let w = &env.world;
        if w.rank() == 0 {
            w.barrier().err()
        } else {
            None
        }
    });
    assert!(matches!(res.per_rank[0], Some(MpiError::Timeout { .. })));
}

#[test]
fn type_mismatch_is_detected() {
    let res = Universe::run(2, short_timeout(), |env| {
        let w = &env.world;
        if w.rank() == 0 {
            w.send(&[1.5f64], 1, 7).unwrap();
            None
        } else {
            w.recv::<u32>(Src::Rank(0), 7).err()
        }
    });
    assert!(matches!(
        res.per_rank[1],
        Some(MpiError::TypeMismatch {
            expected: "u32",
            ..
        })
    ));
}

#[test]
fn invalid_rank_is_rejected_immediately() {
    let res = Universe::run_default(2, |env| {
        let w = &env.world;
        let send_err = w.send(&[1u64], 5, 0).err();
        let recv_err = w.recv::<u64>(Src::Rank(9), 0).err();
        (send_err, recv_err)
    });
    for (s, r) in res.per_rank {
        assert!(matches!(
            s,
            Some(MpiError::InvalidRank { rank: 5, size: 2 })
        ));
        assert!(matches!(
            r,
            Some(MpiError::InvalidRank { rank: 9, size: 2 })
        ));
    }
}

#[test]
fn rbc_split_out_of_range_is_usage_error() {
    let res = Universe::run_default(4, |env| {
        let world = RbcComm::create(&env.world);
        let too_big = world.split(0, 9).err();
        let inverted = world.split(3, 1).err();
        let zero_stride = world.split_strided(0, 3, 0).err();
        (too_big, inverted, zero_stride)
    });
    for (a, b, c) in res.per_rank {
        assert!(matches!(a, Some(MpiError::Usage(_))));
        assert!(matches!(b, Some(MpiError::Usage(_))));
        assert!(matches!(c, Some(MpiError::Usage(_))));
    }
}

#[test]
#[should_panic(expected = "rank failure")]
fn rank_panic_propagates_to_harness() {
    Universe::run_default(3, |env| {
        if env.rank() == 2 {
            panic!("rank failure");
        }
    });
}

#[test]
fn nonblocking_wait_times_out_rather_than_spinning_forever() {
    // A receive whose sender never sends: wait() must give up.
    let res = Universe::run(2, short_timeout(), |env| {
        let w = &env.world;
        if w.rank() == 0 {
            let req = w.irecv::<u64>(Src::Rank(1), 3);
            // wait() falls back to the blocking path with the configured
            // simulator timeout.
            req.wait().err()
        } else {
            None
        }
    });
    assert!(matches!(res.per_rank[0], Some(MpiError::Timeout { .. })));
}

/// Run a 4-rank receive cycle (a textbook deadlock) under the cooperative
/// backend and return each rank's `(rank, waited_for)` diagnostics.
fn coop_deadlock_diagnostics(algo: CommitAlgo, workers: usize) -> Vec<Option<(usize, String)>> {
    let cfg = SimConfig::cooperative()
        .with_commit_algo(algo)
        .with_workers(workers);
    Universe::run(4, cfg, |env| {
        let w = &env.world;
        let from = (w.rank() + 1) % 4;
        w.recv::<u64>(Src::Rank(from), 42).err().map(|e| match e {
            MpiError::Timeout {
                rank, waited_for, ..
            } => (rank, waited_for),
            other => panic!("expected Timeout, got {other:?}"),
        })
    })
    .per_rank
}

#[test]
fn coop_deadlock_diagnostics_exact_under_sharded_commit() {
    // Deadlock poisoning moved behind the sharded commit's merge barrier;
    // the diagnostics must stay *exact*: same rank, same `waited_for`
    // text, for every worker count — byte-identical to the serial oracle.
    let oracle = coop_deadlock_diagnostics(CommitAlgo::Serial, 1);
    for (r, d) in oracle.iter().enumerate() {
        let (rank, text) = d.as_ref().expect("every rank deadlocks");
        assert_eq!(*rank, r);
        assert!(
            text.contains("tag=42") && text.contains("cooperative deadlock"),
            "got: {text}"
        );
    }
    for workers in [1usize, 4, 8] {
        assert_eq!(
            oracle,
            coop_deadlock_diagnostics(CommitAlgo::Sharded, workers),
            "deadlock diagnostics diverged at {workers} workers"
        );
    }
}

#[test]
fn coop_timeout_after_real_traffic_identical_under_sharded_commit() {
    // Sharded commits with real deliveries happen first (a ring
    // exchange), *then* a rank waits forever: the poison must fire on
    // exactly the stuck ranks, with identical text under both commit
    // algorithms. Ranks 0 and 1 both wait on a tag nobody sends so the
    // poison pass wakes several blocked ranks in one commit.
    let run = |algo: CommitAlgo, workers: usize| {
        let cfg = SimConfig::cooperative()
            .with_commit_algo(algo)
            .with_workers(workers);
        Universe::run(8, cfg, |env| {
            let w = &env.world;
            let next = (w.rank() + 1) % 8;
            let prev = (w.rank() + 7) % 8;
            w.send(&[w.rank() as u64], next, 1).unwrap();
            let (v, _) = w.recv::<u64>(Src::Rank(prev), 1).unwrap();
            assert_eq!(v[0] as usize, prev);
            if w.rank() < 2 {
                w.recv::<u64>(Src::Any, 99).err().map(|e| match e {
                    MpiError::Timeout {
                        rank, waited_for, ..
                    } => (rank, waited_for),
                    other => panic!("expected Timeout, got {other:?}"),
                })
            } else {
                None
            }
        })
        .per_rank
    };
    let oracle = run(CommitAlgo::Serial, 1);
    for (r, d) in oracle.iter().enumerate() {
        if r < 2 {
            let (rank, text) = d.as_ref().expect("stuck ranks time out");
            assert_eq!(*rank, r);
            assert!(text.contains("tag=99"), "got: {text}");
        } else {
            assert!(d.is_none(), "rank {r} should have finished cleanly");
        }
    }
    for workers in [1usize, 4, 8] {
        assert_eq!(
            oracle,
            run(CommitAlgo::Sharded, workers),
            "timeout diagnostics diverged at {workers} workers"
        );
    }
}

#[test]
fn sort_with_wrong_global_count_fails_cleanly() {
    let res = Universe::run_default(3, |env| {
        let w = &env.world;
        // n says 30, but every rank passes only 5 elements (needs 10).
        jquick::jquick_sort(
            &jquick::RbcBackend,
            w,
            vec![1u64; 5],
            30,
            &jquick::JQuickConfig::default(),
        )
        .err()
    });
    for e in res.per_rank {
        assert!(matches!(e, Some(MpiError::Usage(_))));
    }
}
