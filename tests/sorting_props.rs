//! Property-based tests of the sorting algorithms: for arbitrary process
//! counts, input sizes, and key distributions (including adversarial
//! duplicate patterns), the output must be globally sorted, perfectly
//! balanced (JQuick), and a permutation of the input.

use jquick::{
    fingerprint, hypercube, jquick_sort, samplesort, verify_sorted, AssignmentKind, JQuickConfig,
    Layout, PivotCfg, RbcBackend, SampleSortCfg, Schedule,
};
use mpisim::{SimConfig, Transport, Universe};
use proptest::prelude::*;

/// Generate each rank's input slice from a seed + distribution selector.
fn input_for(layout: &Layout, rank: u64, seed: u64, dist: u8) -> Vec<u64> {
    let m = layout.cap(rank) as usize;
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(rank + 1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..m)
        .map(|i| match dist % 5 {
            0 => next(),                         // uniform 64-bit
            1 => next() % 3,                     // heavy duplicates
            2 => 42,                             // all equal
            3 => layout.prefix(rank) + i as u64, // presorted
            _ => next() % 100,                   // moderate duplicates
        })
        .collect()
}

fn check_jquick(p: usize, n: u64, seed: u64, dist: u8, cfg: JQuickConfig) {
    let sim = SimConfig::default().with_seed(seed);
    let res = Universe::run(p, sim, move |env| {
        let w = &env.world;
        let layout = Layout::new(n, p as u64);
        let data = input_for(&layout, w.rank() as u64, seed, dist);
        let fp = fingerprint(&data);
        let (out, _) = jquick_sort(&RbcBackend, w, data, n, &cfg).unwrap();
        verify_sorted(w, &out, fp, layout.cap(w.rank() as u64) as usize).unwrap()
    });
    for rep in res.per_rank {
        assert!(rep.all_ok(), "p={p} n={n} seed={seed} dist={dist}: {rep:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case spins up a universe; keep the suite brisk
        .. ProptestConfig::default()
    })]

    #[test]
    fn jquick_sorts_arbitrary_configurations(
        p in 3usize..12,
        per in 1u64..24,
        extra in 0u64..7,
        seed in any::<u64>(),
        dist in 0u8..5,
    ) {
        let n = p as u64 * per + extra.min(p as u64 - 1); // n not a multiple of p
        check_jquick(p, n, seed, dist, JQuickConfig::default());
    }

    #[test]
    fn jquick_staged_assignment_equivalent(
        p in 3usize..10,
        per in 1u64..16,
        seed in any::<u64>(),
        dist in 0u8..5,
    ) {
        let cfg = JQuickConfig { assignment: AssignmentKind::Staged, ..Default::default() };
        check_jquick(p, p as u64 * per, seed, dist, cfg);
    }

    #[test]
    fn jquick_cascaded_schedule_equivalent(
        p in 3usize..10,
        per in 1u64..10,
        seed in any::<u64>(),
    ) {
        let cfg = JQuickConfig { schedule: Schedule::Cascaded, ..Default::default() };
        check_jquick(p, p as u64 * per, seed, 0, cfg);
    }

    #[test]
    fn hypercube_preserves_multiset_and_order(
        logp in 1u32..4,
        per in 1usize..24,
        seed in any::<u64>(),
        dist in 0u8..5,
    ) {
        let p = 1usize << logp;
        let res = Universe::run(p, SimConfig::default().with_seed(seed), move |env| {
            let w = &env.world;
            let layout = Layout::new((p * per) as u64, p as u64);
            let data = input_for(&layout, w.rank() as u64, seed, dist);
            let fp = fingerprint(&data);
            let out = hypercube::hypercube_sort(w, data, &PivotCfg::default()).unwrap();
            let rep = verify_sorted(w, &out, fp, out.len()).unwrap();
            (rep.locally_sorted, rep.globally_ordered, rep.permutation_preserved)
        });
        for (ls, go, pp) in res.per_rank {
            prop_assert!(ls && go && pp);
        }
    }

    #[test]
    fn samplesort_preserves_multiset_and_order(
        p in 1usize..9,
        per in 1usize..24,
        seed in any::<u64>(),
        dist in 0u8..5,
    ) {
        let res = Universe::run(p, SimConfig::default().with_seed(seed), move |env| {
            let w = &env.world;
            let layout = Layout::new((p * per) as u64, p as u64);
            let data = input_for(&layout, w.rank() as u64, seed, dist);
            let fp = fingerprint(&data);
            let out = samplesort::sample_sort(w, data, &SampleSortCfg::default()).unwrap();
            let rep = verify_sorted(w, &out, fp, out.len()).unwrap();
            (rep.locally_sorted, rep.globally_ordered, rep.permutation_preserved)
        });
        for (ls, go, pp) in res.per_rank {
            prop_assert!(ls && go && pp);
        }
    }
}

/// Deterministic regression corpus: configurations that exercised bugs
/// during development (degenerate pivots, janus chains, ragged layouts).
#[test]
fn regression_corpus() {
    for (p, n, seed, dist) in [
        (5usize, 50u64, 51u64, 0u8), // staged-exchange premature completion
        (3, 3, 0, 2),                // all equal, one element each
        (7, 29, 1, 1),               // ragged + duplicates
        (11, 11, 9, 3),              // n/p = 1, presorted
        (4, 64, 2, 2),               // all equal, power of two
        (9, 100, 3, 4),              // ragged
    ] {
        check_jquick(p, n, seed, dist, JQuickConfig::default());
        check_jquick(
            p,
            n,
            seed,
            dist,
            JQuickConfig {
                assignment: AssignmentKind::Staged,
                ..Default::default()
            },
        );
    }
}
