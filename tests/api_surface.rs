//! Table I of the paper: every listed RBC operation and class exists and
//! executes. This test is the "reproduction" of Table I — the library's
//! operation surface.
//!
//! | Blocking Ops | Nonblocking Ops | Classes           |
//! |--------------|-----------------|-------------------|
//! | rbc::Bcast   | rbc::Ibcast     | rbc::Request      |
//! | rbc::Reduce  | rbc::Ireduce    | rbc::Comm         |
//! | rbc::Scan    | rbc::Iscan      |                   |
//! | rbc::Gather  | rbc::Igather    |                   |
//! | rbc::Gatherv | rbc::Igatherv   |                   |
//! | rbc::Barrier | rbc::Ibarrier   |                   |
//! | rbc::Send    | rbc::Isend      |                   |
//! | rbc::Recv    | rbc::Irecv      |                   |
//! | rbc::Probe   | rbc::Iprobe     |                   |
//! | rbc::Wait    | rbc::Test       |                   |
//! | rbc::Waitall |                 |                   |
//! | rbc::Create_RBC_Comm  rbc::Split_RBC_Comm          |
//! | rbc::Comm_rank        rbc::Comm_size               |

use mpisim::{ops, Src, Transport, Universe};
use rbc::{RbcComm, Request};

#[test]
fn every_table_i_operation_runs() {
    let res = Universe::run_default(4, |env| {
        // Classes: rbc::Comm via Create_RBC_Comm / Split_RBC_Comm.
        let world: RbcComm = rbc::create_rbc_comm(&env.world);
        let r = rbc::comm_rank(&world);
        let s = rbc::comm_size(&world);
        assert_eq!(s, 4);
        let sub = rbc::split_rbc_comm(&world, 0, s - 1).unwrap();
        assert_eq!(sub.size(), 4);

        // Blocking collectives.
        let mut b = vec![if r == 0 { 7u64 } else { 0 }];
        world.bcast(&mut b, 0).unwrap(); // rbc::Bcast
        assert_eq!(b, vec![7]);
        let red = world.reduce(&[1u64], 0, ops::sum::<u64>()).unwrap(); // rbc::Reduce
        if r == 0 {
            assert_eq!(red, Some(vec![4]));
        }
        let sc = world.scan(&[1u64], ops::sum::<u64>()).unwrap(); // rbc::Scan
        assert_eq!(sc, vec![r as u64 + 1]);
        let g = world.gather(vec![r as u64], 0).unwrap(); // rbc::Gather
        if r == 0 {
            assert_eq!(g, Some(vec![0, 1, 2, 3]));
        }
        let gv = world.gatherv(vec![r as u64; r], 0).unwrap(); // rbc::Gatherv
        if r == 0 {
            assert_eq!(gv.unwrap()[3], vec![3, 3, 3]);
        }
        world.barrier().unwrap(); // rbc::Barrier

        // Point-to-point: Send/Recv/Probe + I-variants.
        if r == 0 {
            world.send(&[11u64], 1, 5).unwrap(); // rbc::Send
            world.isend(vec![22u64], 1, 6).unwrap(); // rbc::Isend
        }
        if r == 1 {
            let st = world.probe(Src::Rank(0), 5).unwrap(); // rbc::Probe
            assert_eq!((st.source, st.count), (0, 1));
            let (v, _) = world.recv::<u64>(Src::Rank(0), 5).unwrap(); // rbc::Recv
            assert_eq!(v, vec![11]);
            let mut req = world.irecv::<u64>(Src::Rank(0), 6); // rbc::Irecv

            // rbc::Test / rbc::Wait on the request.
            while !req.test().unwrap() {
                std::thread::yield_now();
            }
            assert_eq!(req.take().unwrap().0, vec![22]);
            // rbc::Iprobe returns None once consumed.
            assert!(world.iprobe(Src::Rank(0), 6).unwrap().is_none());
        }

        // Nonblocking collectives + Request/Test/Wait/Waitall.
        let ib = world.ibcast((r == 0).then(|| vec![1u64]), 0, None).unwrap(); // rbc::Ibcast
        let ir = world.ireduce(&[1u64], 0, ops::sum::<u64>(), None).unwrap(); // rbc::Ireduce
        let is = world.iscan(&[1u64], ops::sum::<u64>(), None).unwrap(); // rbc::Iscan
        let ig = world.igather(vec![r as u64], 0, None).unwrap(); // rbc::Igather
        let igv = world.igatherv(vec![r as u64], 0, None).unwrap(); // rbc::Igatherv
        let ibar = world.ibarrier(None).unwrap(); // rbc::Ibarrier
        let mut reqs = vec![
            Request::new(ib),
            Request::new(ir),
            Request::new(is),
            Request::new(ig),
            Request::new(igv),
            Request::new(ibar),
        ];
        assert!(rbc::testall(&mut reqs).is_ok()); // rbc::Testall
        rbc::waitall(&mut reqs).unwrap(); // rbc::Waitall

        // rbc::Wait on a single request.
        let mut one = Request::new(world.ibarrier(Some(999)).unwrap());
        one.wait().unwrap();
        true
    });
    assert!(res.per_rank.iter().all(|&ok| ok));
}

#[test]
fn interfaces_accept_user_tags_like_the_paper() {
    // §V-D: `int rbc::Ibcast(..., int tag = RBC_IBCAST_TAG)`.
    let res = Universe::run_default(3, |env| {
        let world = rbc::create_rbc_comm(&env.world);
        let a = world
            .ibcast((world.rank() == 0).then(|| vec![1u64]), 0, Some(777))
            .unwrap();
        let b = world
            .ibcast((world.rank() == 0).then(|| vec![2u64]), 0, Some(779))
            .unwrap();
        // Two broadcasts in flight on the same communicator, same root —
        // only possible with distinct tags.
        let x = a.wait_data().unwrap()[0];
        let y = b.wait_data().unwrap()[0];
        (x, y)
    });
    for (x, y) in res.per_rank {
        assert_eq!((x, y), (1, 2));
    }
}
