//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, implemented over `std::sync`.
//!
//! Provides the `parking_lot` 0.12 API subset this workspace uses: a
//! [`Mutex`] whose `lock()` returns the guard directly (no `Result`), and a
//! [`Condvar`] whose `wait_for` takes the guard by `&mut`. Poisoning is
//! deliberately ignored (`parking_lot` has no poisoning): a panic while a
//! lock is held propagates through the inner value on the next access.
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock. `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the inner std guard in an `Option` so [`Condvar::wait_for`] can
/// take it by value (std's API) behind parking_lot's `&mut guard` signature.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the protected value (requires `&mut self`,
    /// so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken during wait")
    }
}

/// Outcome of a [`Condvar::wait_for`], mirroring `parking_lot::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard taken during wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(15));
        drop(g); // guard must still be usable/droppable after the wait
    }

    #[test]
    fn notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait_for(&mut g, Duration::from_secs(5));
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
