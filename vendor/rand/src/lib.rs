//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the tiny slice of the `rand` 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`], and
//! [`Rng::gen_range`]. The generator is xoshiro256++ seeded via SplitMix64 —
//! a different stream than upstream `StdRng` (ChaCha12), which is fine: the
//! workspace only relies on determinism-per-seed, never on specific values.
#![warn(missing_docs)]

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic pseudo-random generator (xoshiro256++).
    ///
    /// API-compatible with `rand::rngs::StdRng` for the operations this
    /// workspace performs; the stream differs from upstream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    pub(crate) fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Create a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng {
            s: if s == [0; 4] { [1, 2, 3, 4] } else { s },
        }
    }
}

/// Types producible by [`Rng::gen`], mirroring `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    fn sample_standard(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut StdRng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`], generic over the element type so
/// that integer-literal inference flows from the call site's result type
/// (matching upstream `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if the range is empty.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from(self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Generator interface, mirroring `rand::Rng`.
pub trait Rng {
    /// Draw a uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T;
    /// Draw uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
