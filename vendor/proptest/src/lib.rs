//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build container cannot reach crates.io, so this shim implements the
//! subset of the proptest 1.x surface the workspace's property tests use:
//! the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), integer/float range strategies, [`any`], [`prop_assert!`], and
//! [`prop_assert_eq!`].
//!
//! Semantics differ from upstream in two deliberate ways: case generation is
//! a fixed deterministic stream per (test name, case index) — reruns always
//! see identical inputs — and there is **no shrinking**; a failing case
//! reports its inputs via the standard panic message instead.
#![warn(missing_docs)]

use rand::{Rng, SeedableRng};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for upstream API compatibility; the shim never shrinks,
    /// so this is ignored.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream default. Tests that spawn simulated universes lower it.
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// Per-test deterministic input source handed to [`Strategy::sample`].
pub struct Sampler {
    rng: rand::rngs::StdRng,
}

impl Sampler {
    /// Build the sampler for one case of one property.
    ///
    /// The seed mixes the property name and case index (FNV-1a) so every
    /// property sees an independent but fully reproducible stream.
    pub fn for_case(test_name: &str, case: u32) -> Sampler {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h = (h ^ case as u64).wrapping_mul(0x100000001b3);
        Sampler {
            rng: rand::rngs::StdRng::seed_from_u64(h),
        }
    }
}

/// A source of random values of one type, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, sampler: &mut Sampler) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, s: &mut Sampler) -> $t {
                s.rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, s: &mut Sampler) -> $t {
                s.rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, s: &mut Sampler) -> f64 {
        s.rng.gen_range(self.clone())
    }
}

/// Strategy returned by [`any`]: the full uniform domain of `T`.
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Produce a strategy covering the whole domain of `T`, mirroring
/// `proptest::prelude::any`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

macro_rules! any_strategy {
    ($($t:ty => $gen:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, s: &mut Sampler) -> $t {
                s.rng.gen::<$gen>() as $t
            }
        }
    )*};
}

any_strategy!(u64 => u64, u32 => u32, usize => usize, u16 => u64, u8 => u64,
              i64 => u64, i32 => u32, i16 => u64, i8 => u64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, s: &mut Sampler) -> bool {
        s.rng.gen()
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, s: &mut Sampler) -> f64 {
        s.rng.gen()
    }
}

/// Define property tests, mirroring `proptest::proptest!`.
///
/// Supports the form used in this workspace: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn` items whose
/// parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..cfg.cases {
                let mut __sampler = $crate::Sampler::for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __sampler);)*
                let __inputs = format!(
                    concat!("case ", "{}", $(" ", stringify!($arg), "={:?}",)*),
                    __case $(, $arg)*
                );
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(e) = result {
                    eprintln!("proptest {} failed at {}", stringify!($name), __inputs);
                    std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

/// Assert inside a property, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property, mirroring `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Sampler,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respected(a in 3usize..12, b in 0u8..5, f in 0.0f64..1.0, x in any::<u64>()) {
            prop_assert!((3..12).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((0.0..1.0).contains(&f));
            let _ = x;
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 0u64..10) {
            prop_assert!(v < 10);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut s1 = Sampler::for_case("t", 3);
        let mut s2 = Sampler::for_case("t", 3);
        let st = 0u64..1_000_000;
        assert_eq!(st.sample(&mut s1), st.sample(&mut s2));
    }
}
