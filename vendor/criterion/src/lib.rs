//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build container cannot reach crates.io, so this shim supplies the API
//! subset the workspace's benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`], and
//! [`criterion_main!`] — with a simple calibrated-loop timer instead of
//! criterion's statistical machinery. Results print as
//! `group/name  ...  <mean> ns/iter`; there is no outlier analysis, HTML
//! report, or saved baseline.
//!
//! One extension over upstream: every run also appends its results to a
//! process-wide registry and — via the `criterion_main!`-generated `main` —
//! writes `results/BENCH_<bench-binary>.json` (per-benchmark ns/iter plus
//! total wall-clock), so CI can archive and compare benchmark output
//! without scraping stdout.
#![warn(missing_docs)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Completed measurements of this process, in execution order.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing driver handed to the closure, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    mean_ns: f64,
}

/// Target wall-clock budget for one benchmark's measurement phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Time `f`, first calibrating an iteration count that fits the budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it takes >= ~1ms or caps out.
        let mut batch: u64 = 1;
        let per_iter_ns = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break dt.as_nanos() as f64 / batch as f64;
            }
            batch *= 2;
        };
        // Measure: as many batches as fit in the budget, at least 3.
        let budget_ns = MEASURE_BUDGET.as_nanos() as f64;
        let rounds = ((budget_ns / (per_iter_ns * batch as f64 + 1.0)) as u64).clamp(3, 1000);
        let t0 = Instant::now();
        for _ in 0..rounds {
            for _ in 0..batch {
                black_box(f());
            }
        }
        self.mean_ns = t0.elapsed().as_nanos() as f64 / (rounds * batch) as f64;
    }
}

/// Identifier for a parameterised benchmark, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into one display id.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run_one(&self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { mean_ns: f64::NAN };
        f(&mut b);
        let full = format!("{}/{id}", self.name);
        println!("{full:<52} {:>14.1} ns/iter", b.mean_ns);
        record(full, b.mean_ns);
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, |b| f(b));
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    /// End the group (upstream consumes `self`; here it is a no-op marker).
    pub fn finish(self) {}
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Create a harness with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_ns: f64::NAN };
        f(&mut b);
        println!("{id:<52} {:>14.1} ns/iter", b.mean_ns);
        record(id.to_string(), b.mean_ns);
        self
    }
}

fn record(id: String, mean_ns: f64) {
    RESULTS.lock().unwrap().push((id, mean_ns));
}

/// Write `results/BENCH_<name>.json` with every measurement recorded so far
/// plus the harness wall-clock. `name` is the bench binary's file stem with
/// cargo's trailing `-<hash>` stripped. Called by the `criterion_main!`
/// expansion; harmless to call manually.
pub fn write_json_report(wall_clock_s: f64) {
    let name = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .map(|stem| match stem.rsplit_once('-') {
            // cargo names bench binaries `<name>-<16-hex-hash>`.
            Some((base, hash))
                if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
            {
                base.to_string()
            }
            _ => stem,
        })
        .unwrap_or_else(|| "bench".to_string());
    let results = RESULTS.lock().unwrap();
    let mut out =
        format!("{{\"bench\":{name:?},\"wall_clock_s\":{wall_clock_s:.3},\"benchmarks\":[");
    for (i, (id, ns)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if ns.is_finite() {
            out.push_str(&format!("{{\"id\":{id:?},\"ns_per_iter\":{ns:.1}}}"));
        } else {
            out.push_str(&format!("{{\"id\":{id:?},\"ns_per_iter\":null}}"));
        }
    }
    out.push_str("]}\n");
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("BENCH_{name}.json"));
    if std::fs::write(&path, out).is_ok() {
        eprintln!("wrote {}", path.display());
    }
}

/// Bundle benchmark functions into one runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` for a set of groups, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let t0 = std::time::Instant::now();
            $($group();)+
            $crate::write_json_report(t0.elapsed().as_secs_f64());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 7)
        });
        g.finish();
    }

    #[test]
    fn harness_smoke() {
        let mut c = Criterion::new();
        trivial(&mut c);
    }
}
