//! Janus Quicksort (paper §VII, the setting of Fig. 8) end to end: sort a
//! distributed array, verify the §II output contract (globally sorted,
//! perfectly balanced, permutation of the input), and print the per-rank
//! statistics.
//!
//! Usage: `cargo run --release --example jquick_sort [p] [n_per_proc] [backend]`
//! where backend is `rbc` (default) or `mpi`.

use jquick::{
    fingerprint, jquick_sort, verify_sorted, JQuickConfig, Layout, MpiBackend, RbcBackend,
};
use mpisim::{SimConfig, Transport, Universe, VendorProfile};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let p: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let n_per: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let backend = args.get(3).map(String::as_str).unwrap_or("rbc").to_string();
    let n = n_per * p as u64;

    println!("JQuick: sorting {n} doubles on {p} simulated processes ({backend} backend)\n");

    let cfg = SimConfig::default().with_vendor(VendorProfile::intel_like());
    let backend_name = backend.clone();
    let res = Universe::run(p, cfg, move |env| {
        let w = &env.world;
        let layout = Layout::new(n, p as u64);
        let me = w.rank() as u64;
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ me);
        let data: Vec<f64> = (0..layout.cap(me))
            .map(|_| rng.gen_range(-1e6..1e6))
            .collect();
        let fp = fingerprint(&data);

        w.barrier().unwrap();
        let t0 = env.now();
        let (out, stats) = if backend_name == "mpi" {
            jquick_sort(&MpiBackend, w, data, n, &JQuickConfig::default()).unwrap()
        } else {
            jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default()).unwrap()
        };
        let elapsed = env.now() - t0;

        let report = verify_sorted(w, &out, fp, layout.cap(me) as usize).unwrap();
        assert!(report.all_ok(), "verification failed: {report:?}");
        (out.len(), stats, elapsed, report)
    });

    let (_, _, _, report) = &res.per_rank[0];
    println!("globally sorted:        {}", report.globally_ordered);
    println!("perfectly balanced:     {}", report.balanced);
    println!("permutation preserved:  {}", report.permutation_preserved);

    let max_time = res.per_rank.iter().map(|(_, _, t, _)| *t).max().unwrap();
    let max_level = res
        .per_rank
        .iter()
        .map(|(_, s, _, _)| s.max_level)
        .max()
        .unwrap();
    let creations: usize = res
        .per_rank
        .iter()
        .map(|(_, s, _, _)| s.comm_creations)
        .sum();
    let bases: usize = res
        .per_rank
        .iter()
        .map(|(_, s, _, _)| s.base_1 + s.base_2)
        .sum();

    println!("\nvirtual sort time (makespan): {max_time}");
    println!("recursion depth:              {max_level}");
    println!("communicators created:        {creations}");
    println!("base cases executed:          {bases}");
    println!(
        "output sizes: {:?} (⌊n/p⌋ = {}, ⌈n/p⌉ = {})",
        &res.per_rank.iter().map(|(l, ..)| *l).collect::<Vec<_>>()[..p.min(8)],
        n / p as u64,
        n.div_ceil(p as u64),
    );
}
