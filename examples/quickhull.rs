//! Distributed QuickHull — the divide-and-conquer application the paper's
//! conclusion (§IX) proposes for RBC.
//!
//! Points are scattered over the processes; the recursion runs one
//! all-reduce per hull-edge node. With native MPI, each recursion node of a
//! group-splitting formulation would pay a blocking communicator creation;
//! the RBC formulation pays nothing.
//!
//! Run with: `cargo run --release --example quickhull [p] [points_per_proc]`

use jquick::quickhull::{quickhull, quickhull_reference, Point};
use mpisim::{Transport, Universe};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let p: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let m: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5000);

    let res = Universe::run_default(p, move |env| {
        let w = &env.world;
        let mut rng = StdRng::seed_from_u64(0xD1CE ^ w.rank() as u64);
        // Points in a disc — hull size grows ~ n^(1/3).
        let pts: Vec<Point> = (0..m)
            .map(|_| {
                let r = rng.gen_range(0.0f64..1.0).sqrt() * 100.0;
                let a = rng.gen_range(0.0f64..std::f64::consts::TAU);
                Point::new(r * a.cos(), r * a.sin())
            })
            .collect();
        w.barrier().unwrap();
        let t0 = env.now();
        let (hull, stats) = quickhull(w, &pts).unwrap();
        let elapsed = env.now() - t0;
        (pts, hull, stats, elapsed)
    });

    let (_, hull, stats, _) = &res.per_rank[0];
    let all: Vec<Point> = res
        .per_rank
        .iter()
        .flat_map(|(pts, ..)| pts.clone())
        .collect();
    let reference = quickhull_reference(&all);
    let max_t = res.per_rank.iter().map(|(.., t)| *t).max().unwrap();

    println!("{} points on {p} processes", all.len());
    println!("hull vertices:        {}", hull.len());
    println!("matches sequential:   {}", hull.len() == reference.len());
    println!("recursion nodes:      {}", stats.nodes);
    println!("max depth:            {}", stats.max_depth);
    println!("virtual time:         {max_t}");
    println!(
        "\nwith native MPI, {} recursion nodes would each pay a blocking communicator",
        stats.nodes
    );
    println!("creation; with RBC the group context costs nothing (paper §IX).");
    assert_eq!(hull.len(), reference.len());
}
