//! Quickstart — a direct transcription of Fig. 1 of the paper:
//!
//! "Nonblocking broadcast from rank 0 to ranks 0..s/2−1 and from rank s/2
//! to ranks s/2..s−1. Both RBC communicators are created locally without
//! process synchronization."
//!
//! Run with: `cargo run --release --example quickstart`

use mpisim::{Transport, Universe};
use rbc::RbcComm;

fn main() {
    let p = 8;
    let result = Universe::run_default(p, |env| {
        // rbc::Comm world, range;
        // rbc::Create_RBC_Comm(MPI_COMM_WORLD, &world);
        let world: RbcComm = rbc::create_rbc_comm(&env.world);
        let r = rbc::comm_rank(&world);
        let s = rbc::comm_size(&world);

        // if (r < s / 2) {f = 0; l = s / 2 - 1;}
        // else {f = s / 2; l = s - 1;}
        let (f, l) = if r < s / 2 {
            (0, s / 2 - 1)
        } else {
            (s / 2, s - 1)
        };

        // Local op. No synchronization.
        let range = rbc::split_rbc_comm(&world, f, l).expect("member of the range");

        // rbc::Ibcast(&e, 1, MPI_INT, root, range, &req);
        let root = 0;
        let payload = (range.rank() == root).then(|| vec![r as u64 * 100]);
        let mut req = range.ibcast(payload, root, None).expect("ibcast starts");

        // while (!flag) { /* Do something else. */ rbc::Test(&req, &flag, ...); }
        let mut flag = false;
        let mut useful_work = 0u64;
        while !flag {
            useful_work += 1; // Do something else.
            flag = rbc::test(&mut req).expect("test");
        }

        let e = req.into_data().expect("broadcast complete")[0];
        (r, e, useful_work)
    });

    println!("rank | received | iterations of overlapped work");
    for (r, e, w) in &result.per_rank {
        println!("{r:>4} | {e:>8} | {w}");
    }
    println!(
        "\nvirtual makespan: {} (two broadcasts ran concurrently on locally created communicators)",
        result.max_time()
    );
}
