//! Overlapping process groups with a janus process — the scenario that
//! motivates the whole paper (§I, §VII).
//!
//! Process p/2 belongs to two groups at once (left: 0..=p/2, right:
//! p/2..=p−1). Each group runs a chain of nonblocking collectives
//! (reduce → broadcast of the result); the janus drives both chains
//! simultaneously, so neither group waits for the other. With native
//! blocking communicator creation this layout needs a creation schedule;
//! with RBC both communicators exist instantly.
//!
//! Run with: `cargo run --release --example overlapping_groups`

use mpisim::nbcoll::Progress;
use mpisim::{ops, Time, Transport, Universe};
use rbc::RbcComm;

fn main() {
    let p = 9;
    let res = Universe::run_default(p, |env| {
        let world = RbcComm::create(&env.world);
        let r = world.rank();
        let mid = p / 2;

        // Local, O(1), no synchronization — overlapping at rank `mid` only.
        let left = (r <= mid).then(|| world.split(0, mid).unwrap());
        let right = (r >= mid).then(|| world.split(mid, p - 1).unwrap());

        // Simulate the right group being busy with other work first.
        if r > mid {
            env.state().charge(Time::from_millis(2));
        }

        // Each group: all-reduce its ranks, then everyone learns the sum.
        // The janus starts BOTH operations before finishing either.
        let mut left_op = left
            .as_ref()
            .map(|c| c.iallreduce(&[r as u64], ops::sum::<u64>(), None).unwrap());
        let mut right_op = right.as_ref().map(|c| {
            c.iallreduce(&[r as u64 * 10], ops::sum::<u64>(), None)
                .unwrap()
        });

        let mut left_done_at = None;
        let mut right_done_at = None;
        loop {
            if let Some(op) = left_op.as_mut() {
                if left_done_at.is_none() && op.poll().unwrap() {
                    left_done_at = Some(env.now());
                }
            } else {
                left_done_at.get_or_insert(Time::ZERO);
            }
            if let Some(op) = right_op.as_mut() {
                if right_done_at.is_none() && op.poll().unwrap() {
                    right_done_at = Some(env.now());
                }
            } else {
                right_done_at.get_or_insert(Time::ZERO);
            }
            if left_done_at.is_some() && right_done_at.is_some() {
                break;
            }
            std::thread::yield_now();
        }

        let l = left_op.map(|op| op.result().unwrap()[0]);
        let rr = right_op.map(|op| op.result().unwrap()[0]);
        (r, l, rr, left_done_at.unwrap(), right_done_at.unwrap())
    });

    println!("rank | left sum | right sum | left done | right done");
    for (r, l, rr, lt, rt) in &res.per_rank {
        println!(
            "{r:>4} | {:>8} | {:>9} | {lt:>9} | {rt}",
            l.map_or("-".into(), |v| v.to_string()),
            rr.map_or("-".into(), |v| v.to_string()),
        );
    }
    let mid = p / 2;
    let (_, l, rr, ..) = &res.per_rank[mid];
    println!(
        "\njanus rank {mid} computed BOTH group results ({} and {}).",
        l.unwrap(),
        rr.unwrap()
    );
    // The pure left-group members finished long before the right group's
    // artificial 2 ms delay — the busy right group did not hold them back,
    // even though the janus sits in both groups (paper §VII).
    let (_, _, _, left_done, _) = res.per_rank[mid - 1];
    let (_, _, _, _, right_done) = res.per_rank[mid + 1];
    println!("left group finished at {left_done} (vs busy right group at {right_done}):");
    println!("progress in one subtask did not delay progress in the other (paper §VII).");
    assert!(
        left_done < Time::from_millis(2),
        "left group must not wait for the busy right group"
    );
    assert!(right_done >= Time::from_millis(2));
}
