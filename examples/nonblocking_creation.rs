//! The paper's §VI proposal in action: `MPI_Icomm_create_group`.
//!
//! Creates a full binary recursion tree of communicators — the pattern of
//! any distributed divide-and-conquer algorithm — three ways, and reports
//! what each costs in virtual time and messages:
//!
//! 1. blocking `MPI_Comm_create_group` (today's MPI);
//! 2. nonblocking `MPI_Icomm_create_group`, range case (§VI: constant
//!    time, zero communication, full MPI semantics);
//! 3. RBC `Split_RBC_Comm` (constant time, zero communication, weakened
//!    tag semantics).
//!
//! Run with: `cargo run --release --example nonblocking_creation [p]`

use mpisim::icomm::icomm_create_group;
use mpisim::{Group, SimConfig, Time, Transport, Universe, VendorProfile};
use rbc::RbcComm;

fn main() {
    let p: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    assert!(p.is_power_of_two(), "use a power of two for clean halving");

    println!("building a full halving tree of communicators over {p} processes\n");
    println!("method                        | virtual time | messages");
    println!("------------------------------|--------------|---------");

    for method in [
        "blocking create_group",
        "icomm_create_group (§VI)",
        "RBC split",
    ] {
        let cfg = SimConfig::default().with_vendor(VendorProfile::intel_like());
        let res = Universe::run(p, cfg, move |env| {
            let w = &env.world;
            let t0 = env.now();
            match method {
                "blocking create_group" => {
                    let mut comm = w.clone();
                    let mut lo = 0usize;
                    while comm.size() > 1 {
                        let half = comm.size() / 2;
                        let (f, len) = if comm.rank() < half {
                            (lo, half)
                        } else {
                            (lo + half, comm.size() - half)
                        };
                        comm = comm.create_group(&Group::range(f, 1, len), 5).unwrap();
                        lo = f;
                    }
                }
                "icomm_create_group (§VI)" => {
                    let mut comm = w.clone();
                    let mut lo = 0usize;
                    while comm.size() > 1 {
                        let half = comm.size() / 2;
                        let (f, len) = if comm.rank() < half {
                            (lo, half)
                        } else {
                            (lo + half, comm.size() - half)
                        };
                        let req = icomm_create_group(&comm, &Group::range(f, 1, len), 5).unwrap();
                        comm = req.wait_comm().unwrap();
                        lo = f;
                    }
                }
                _ => {
                    let mut comm = RbcComm::create(w);
                    while comm.size() > 1 {
                        let half = comm.size() / 2;
                        comm = if comm.rank() < half {
                            comm.split(0, half - 1).unwrap()
                        } else {
                            comm.split(half, comm.size() - 1).unwrap()
                        };
                    }
                }
            }
            env.now() - t0
        });
        let max_t: Time = res.per_rank.iter().copied().max().unwrap();
        println!("{method:<30}| {max_t:>12} | {:>8}", res.traffic.messages);
    }
    println!("\nThe §VI range case and RBC both create log2({p}) levels of communicators");
    println!("with ZERO messages; blocking creation pays a collective per level. The");
    println!("§VI variant additionally keeps full MPI context isolation (no tag rules).");
}
