//! The three distributed sorts of the paper side by side (§IV, §VII):
//! Janus Quicksort (perfect balance, any p), hypercube quicksort (power of
//! two, imbalance), and single-level sample sort (one data exchange,
//! balance in expectation).
//!
//! Input is heavily skewed to expose the balance differences.
//!
//! Run with: `cargo run --release --example sorting_comparison [p] [n_per]`

use jquick::{
    hypercube, imbalance_factor, jquick_sort, multilevel, samplesort, verify_sorted, JQuickConfig,
    Layout, PivotCfg, RbcBackend, SampleSortCfg,
};
use mpisim::{Time, Transport, Universe};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rbc::RbcComm;

fn skewed(rank: u64, m: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(rank * 31 + 5);
    (0..m)
        .map(|_| {
            let x: f64 = rng.gen();
            x.powi(4) * 1e6
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let p: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let n_per: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2000);
    assert!(
        p.is_power_of_two(),
        "hypercube quicksort needs a power of two"
    );
    let n = (n_per * p) as u64;

    println!("sorting {n} skewed doubles on {p} processes\n");
    println!("algorithm   | virtual time | max/avg output size | sorted | permutation");
    println!("------------|--------------|---------------------|--------|------------");

    for algo in ["jquick", "hypercube", "samplesort", "multilevel"] {
        let res = Universe::run_default(p, move |env| {
            let w = &env.world;
            let me = w.rank() as u64;
            let layout = Layout::new(n, p as u64);
            let data = skewed(me, layout.cap(me) as usize);
            let fp = jquick::fingerprint(&data);
            w.barrier().unwrap();
            let t0 = env.now();
            let out = match algo {
                "jquick" => {
                    jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default())
                        .unwrap()
                        .0
                }
                "hypercube" => hypercube::hypercube_sort(w, data, &PivotCfg::default()).unwrap(),
                "samplesort" => {
                    samplesort::sample_sort(w, data, &SampleSortCfg { oversample: 8 }).unwrap()
                }
                _ => {
                    let world = RbcComm::create(&env.world);
                    multilevel::multilevel_sample_sort(
                        &world,
                        data,
                        &multilevel::MultiLevelCfg::default(),
                    )
                    .unwrap()
                    .0
                }
            };
            let dt = env.now() - t0;
            let rep = verify_sorted(w, &out, fp, out.len()).unwrap();
            let imb = imbalance_factor(w, out.len()).unwrap();
            (dt, imb, rep)
        });
        let max_t: Time = res.per_rank.iter().map(|(t, _, _)| *t).max().unwrap();
        let (_, imb, rep) = &res.per_rank[0];
        println!(
            "{algo:<11} | {max_t:>12} | {imb:>19.3} | {:>6} | {}",
            rep.locally_sorted && rep.globally_ordered,
            rep.permutation_preserved
        );
    }
    println!("\nJQuick's max/avg of 1.000 is the paper's 'perfectly balanced' guarantee;");
    println!("hypercube quicksort drifts far above 1 on skewed data (its motivation, §IV).");
}
